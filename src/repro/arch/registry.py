"""Named architecture registry: one front door for every SM description.

Mirrors :mod:`repro.workloads.registry` for the third evaluation axis.
An architecture name resolves, lazily, through two mechanisms:

1. **Registered providers** -- explicit name -> :class:`ArchProvider`
   entries.  The built-ins cover the paper's evaluation points: the
   Maxwell-like normalisation baseline, the Table 2 design rows
   (``table2-1`` .. ``table2-7``), the TFET/DWM latency variants, their
   8x-capacity forms, and the Section 4.2 narrow-crossbar design.
2. **Architecture files** -- any name that looks like a ``.arch.json``
   path loads through :mod:`repro.arch.serialize`, so defining a new SM
   topology means dropping a JSON file, not editing Python.

Resolution is pure in the name: a pool worker that receives only the
architecture string rebuilds the identical configuration.  Built
configurations and their content fingerprints are memoised per
registry -- with stat-signature invalidation for file-backed entries,
so a rewritten ``.arch.json`` can never be served (or cache-keyed)
with stale content.

Unknown names raise :class:`UnknownArchError` carrying nearest-match
suggestions (difflib), which the CLI surfaces instead of a stack trace.
"""

from __future__ import annotations

import difflib
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.config import GPUConfig
from repro.arch.serialize import arch_fingerprint, load_arch

#: Canonical extension for serialised architectures (what
#: ``export-arch`` writes by default).
ARCH_FILE_SUFFIX = ".arch.json"

#: Resolution accepts any ``.json`` name as a file path -- decidable
#: from the name alone, so worker processes resolve identically, and no
#: registered architecture name can legitimately end in ``.json``.
_FILE_NAME_SUFFIX = ".json"


def is_arch_file_name(name: str) -> bool:
    """True when ``name`` routes to the ``.arch.json`` loader."""
    return name.endswith(_FILE_NAME_SUFFIX)


class UnknownArchError(ValueError):
    """An unresolvable architecture name, with nearest-name suggestions."""

    def __init__(self, name: str, suggestions: List[str],
                 known: List[str]) -> None:
        self.name = name
        self.suggestions = suggestions
        self.known = known
        message = f"unknown architecture {name!r}"
        if suggestions:
            message += "; did you mean: " + ", ".join(suggestions) + "?"
        message += (
            "  (run `list-archs` for built-in names, or pass a "
            ".arch.json path)"
        )
        super().__init__(message)

    def __reduce__(self):
        # Exception pickling reconstructs from Exception.args (the
        # formatted message), which does not match this __init__
        # signature; without this, a pool worker raising the error
        # takes the whole executor down as BrokenProcessPool.
        return (UnknownArchError, (self.name, self.suggestions, self.known))


class ArchProvider:
    """Lazy source of one named architecture."""

    def __init__(self, name: str, source: str,
                 build: Callable[[], GPUConfig],
                 description: str = "") -> None:
        self.name = name
        self.source = source
        self.description = description
        self._build = build

    def build(self) -> GPUConfig:
        return self._build()

    def __repr__(self) -> str:
        return f"ArchProvider({self.name!r}, source={self.source!r})"


class ArchFileProvider(ArchProvider):
    """Provider backed by a serialised ``.arch.json`` file."""

    def __init__(self, path: str, name: Optional[str] = None) -> None:
        super().__init__(
            name if name is not None else path, "file",
            lambda: load_arch(path),
            description=f"architecture file {path}",
        )
        self.path = path


class ArchRegistry:
    """Name -> configuration resolution with lazy providers and memos."""

    def __init__(self) -> None:
        self._providers: Dict[str, ArchProvider] = {}
        self._configs: Dict[str, GPUConfig] = {}
        self._fingerprints: Dict[str, str] = {}
        # name -> (path, stat signature) for file-backed architectures,
        # so a rewritten .arch.json invalidates the memo (get_config).
        self._file_sources: Dict[str, Tuple[str, Tuple[int, int, int]]] = {}

    # -- registration -----------------------------------------------------

    def register(self, provider: ArchProvider,
                 replace: bool = False) -> ArchProvider:
        if not replace and provider.name in self._providers:
            raise ValueError(
                f"architecture {provider.name!r} is already registered"
            )
        self._providers[provider.name] = provider
        self._configs.pop(provider.name, None)
        self._fingerprints.pop(provider.name, None)
        self._file_sources.pop(provider.name, None)
        return provider

    def register_config(self, name: str, config: GPUConfig,
                        description: str = "",
                        replace: bool = False) -> ArchProvider:
        return self.register(
            ArchProvider(name, "builtin", lambda: config, description),
            replace=replace,
        )

    def register_file(self, path: str, name: Optional[str] = None,
                      replace: bool = False) -> ArchProvider:
        return self.register(ArchFileProvider(path, name), replace=replace)

    # -- listing ----------------------------------------------------------

    def names(self) -> List[str]:
        """Registered provider names, in registration order."""
        return list(self._providers)

    def provider(self, name: str) -> ArchProvider:
        """Resolve ``name`` without building the configuration."""
        found = self._providers.get(name)
        if found is not None:
            return found
        if is_arch_file_name(name):
            return ArchFileProvider(name)
        raise UnknownArchError(name, self._suggestions(name), self.names())

    def _suggestions(self, name: str) -> List[str]:
        return difflib.get_close_matches(name, self.names(), n=3,
                                         cutoff=0.5)

    # -- materialisation --------------------------------------------------

    @staticmethod
    def _file_signature(path: str) -> Optional[Tuple[int, int, int]]:
        try:
            status = os.stat(path)
        except OSError:
            return None
        return (status.st_mtime_ns, status.st_size, status.st_ino)

    def _invalidate_if_file_changed(self, name: str) -> None:
        """Drop memoised state when an architecture file was rewritten.

        Names are just lookup handles; for file-backed architectures
        the content lives on disk and can change under a long-lived
        process.  Serving the old configuration (and old fingerprint)
        then would be exactly the silently-wrong-results hazard the
        fingerprinted cache key exists to prevent.
        """
        source = self._file_sources.get(name)
        if source is None:
            return
        path, signature = source
        if self._file_signature(path) != signature:
            self._configs.pop(name, None)
            self._fingerprints.pop(name, None)
            del self._file_sources[name]

    def get_config(self, name: str) -> GPUConfig:
        """Build (and memoise) the configuration behind ``name``."""
        self._invalidate_if_file_changed(name)
        if name not in self._configs:
            provider = self.provider(name)
            if isinstance(provider, ArchFileProvider):
                # Capture the stat signature *before* reading: if the
                # file is replaced mid-read we re-validate next lookup.
                signature = self._file_signature(provider.path)
                config = provider.build()
                if signature is None:
                    signature = self._file_signature(provider.path)
                if signature is None:
                    # Still unstattable: memoising would pin this
                    # content forever with no way to detect a rewrite.
                    return config
                self._configs[name] = config
                self._file_sources[name] = (provider.path, signature)
            else:
                self._configs[name] = provider.build()
        return self._configs[name]

    def resolve(self, name: str) -> Tuple[GPUConfig, str]:
        """``(config, fingerprint)`` for ``name``, computed coherently.

        The fingerprint is derived from the *same configuration object*
        that is returned, so a file rewrite between two separate calls
        cannot pair a configuration with another content's hash.
        """
        config = self.get_config(name)
        fingerprint = self._fingerprints.get(name)
        if fingerprint is None:
            fingerprint = arch_fingerprint(config)
            if self._configs.get(name) is config:
                # Mirror get_config's guard: when it declined to
                # memoise (unstattable file), a cached fingerprint
                # would outlive the content it hashes.
                self._fingerprints[name] = fingerprint
        return config, fingerprint

    def fingerprint(self, name: str) -> str:
        """Content fingerprint of the architecture behind ``name``."""
        return self.resolve(name)[1]


def _builtin_providers() -> List[ArchProvider]:
    """The paper's evaluation points, built lazily by name.

    Built-ins construct exactly the same objects the experiment helpers
    (``baseline_config``, ``table2_config``) historically built inline,
    so registry-resolved runs reuse every existing store entry.
    """

    def _baseline() -> GPUConfig:
        # 272KB = configuration #1's 256KB MRF plus the 16KB RFC
        # budget: the normalisation baseline every figure divides by.
        return GPUConfig(mrf_size_kb=272)

    def _table2(config_id: int) -> Callable[[], GPUConfig]:
        def build() -> GPUConfig:
            from repro.power.tech import gpu_config_for
            return gpu_config_for(config_id, GPUConfig())
        return build

    providers = [
        ArchProvider(
            "maxwell-like", "builtin", _baseline,
            "Table 3 Maxwell-like SM; 272KB normalisation baseline "
            "(#1 MRF + RFC budget)",
        ),
        ArchProvider(
            "tfet", "builtin",
            lambda: _baseline().with_latency_multiple(5.3),
            "baseline capacity at TFET SRAM latency (5.3x, Table 2)",
        ),
        ArchProvider(
            "dwm", "builtin",
            lambda: _baseline().with_latency_multiple(6.3),
            "baseline capacity at DWM latency (6.3x, Table 2)",
        ),
        ArchProvider(
            "narrow-crossbar", "builtin",
            lambda: _baseline().scaled(narrow_crossbar=True),
            "baseline with the 4x-narrowed MRF crossbar (Section 4.2)",
        ),
    ]
    table2_notes = {
        1: "256KB HP-SRAM baseline design",
        2: "8x-capacity HP SRAM, bigger banks (1.25x latency)",
        3: "8x-capacity HP SRAM, 8x banks (1.5x latency)",
        4: "8x-capacity LSTP SRAM, bigger banks (1.6x latency)",
        5: "8x-capacity LSTP SRAM, 8x banks (2.8x latency)",
        6: "8x-capacity TFET SRAM (5.3x latency)",
        7: "8x-capacity DWM (6.3x latency)",
    }
    for config_id, note in table2_notes.items():
        providers.append(ArchProvider(
            f"table2-{config_id}", "builtin", _table2(config_id),
            f"Table 2 configuration #{config_id}: {note}",
        ))
    # The paper's headline design points under memorable names.
    providers.append(ArchProvider(
        "tfet-8x", "builtin", _table2(6),
        "alias of table2-6: 8x-capacity TFET register file",
    ))
    providers.append(ArchProvider(
        "dwm-8x", "builtin", _table2(7),
        "alias of table2-7: 8x-capacity DWM register file",
    ))
    return providers


#: The process-wide default registry, populated lazily with the paper's
#: built-in design points.  Lazy so that importing this module never
#: drags in :mod:`repro.power` (and so worker processes build an
#: identical registry from the same immutable definitions).
_default: Optional[ArchRegistry] = None


def default_arch_registry() -> ArchRegistry:
    global _default
    if _default is None:
        registry = ArchRegistry()
        for provider in _builtin_providers():
            registry.register(provider)
        _default = registry
    return _default


def arch_config(arch, **overrides) -> GPUConfig:
    """Resolve an architecture reference into a :class:`GPUConfig`.

    ``arch`` may be a registry name (``"maxwell-like"``), a
    ``.arch.json`` path, or an already-built :class:`GPUConfig`
    (passed through).  Keyword overrides are applied last via
    :meth:`GPUConfig.scaled`, so experiment grids can declare an axis
    as *registry name + delta* instead of an ad-hoc ``scaled()`` chain.
    """
    if isinstance(arch, GPUConfig):
        config = arch
    else:
        config = default_arch_registry().get_config(arch)
    if overrides:
        config = config.scaled(**overrides)
    return config
