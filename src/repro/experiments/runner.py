"""Simulation runner with on-disk result caching.

Every experiment reduces to "simulate workload X under policy P on
configuration C".  The runner centralises that, memoises results both
in memory and on disk (keyed by a fingerprint of the inputs), and
returns slim :class:`RunRecord` objects.  The latency sweeps of
Figures 11-14 revisit the same grid points, so caching cuts the full
reproduction from thousands of simulations to a few hundred.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

from repro.arch.config import GPUConfig
from repro.arch.sm import StreamingMultiprocessor
from repro.policies import policy_by_name
from repro.workloads import get_kernel

#: Default on-disk cache location (created on demand).
DEFAULT_CACHE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))),
    ".ltrf_cache",
)


@dataclass(frozen=True)
class RunRecord:
    """Slim, JSON-serialisable summary of one simulation."""

    workload: str
    policy: str
    ipc: float
    cycles: int
    instructions: int
    prefetch_operations: int
    resident_warps: int
    activations: int
    deactivations: int
    mrf_reads: int
    mrf_writes: int
    rfc_reads: int
    rfc_writes: int
    rfc_read_hits: int
    rfc_read_misses: int
    rfc_fills: int
    rfc_writebacks: int
    l1_hit_rate: float

    @property
    def mrf_accesses(self) -> int:
        return self.mrf_reads + self.mrf_writes

    @property
    def rfc_accesses(self) -> int:
        return self.rfc_reads + self.rfc_writes

    @property
    def rfc_hit_rate(self) -> float:
        total = self.rfc_read_hits + self.rfc_read_misses
        return self.rfc_read_hits / total if total else 0.0


def _config_fingerprint(config: GPUConfig) -> str:
    payload = {
        field.name: getattr(config, field.name)
        for field in fields(config)
        if field.name != "memory"
    }
    payload["memory"] = asdict(config.memory)
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


class Runner:
    """Cached simulation front-end used by all experiments."""

    def __init__(self, cache_dir: Optional[str] = DEFAULT_CACHE_DIR) -> None:
        self.cache_dir = cache_dir
        self._memory_cache: Dict[str, RunRecord] = {}
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # -- cache plumbing -----------------------------------------------------

    def _key(self, workload: str, policy: str, config: GPUConfig,
             seed: int) -> str:
        return f"{workload}__{policy}__{_config_fingerprint(config)}__{seed}"

    def _cache_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        safe = key.replace("/", "_").replace("+", "plus")
        return os.path.join(self.cache_dir, f"{safe}.json")

    def _load(self, key: str) -> Optional[RunRecord]:
        if key in self._memory_cache:
            return self._memory_cache[key]
        path = self._cache_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                payload = json.load(handle)
            record = RunRecord(**payload)
        except (ValueError, TypeError, KeyError):
            return None          # stale cache entry from an older schema
        self._memory_cache[key] = record
        return record

    def _store(self, key: str, record: RunRecord) -> None:
        self._memory_cache[key] = record
        path = self._cache_path(key)
        if path is not None:
            with open(path, "w") as handle:
                json.dump(asdict(record), handle)

    # -- simulation -------------------------------------------------------------

    def simulate(self, workload: str, policy: str, config: GPUConfig,
                 seed: int = 0) -> RunRecord:
        """Run (or fetch from cache) one simulation."""
        key = self._key(workload, policy, config, seed)
        cached = self._load(key)
        if cached is not None:
            return cached
        kernel = get_kernel(workload)
        sm = StreamingMultiprocessor(config, policy_by_name(policy))
        result = sm.run(kernel, seed=seed)
        record = RunRecord(
            workload=workload,
            policy=policy,
            ipc=result.ipc,
            cycles=result.cycles,
            instructions=result.instructions,
            prefetch_operations=result.prefetch_operations,
            resident_warps=result.resident_warps,
            activations=result.activations,
            deactivations=result.deactivations,
            mrf_reads=result.mrf_reads,
            mrf_writes=result.mrf_writes,
            rfc_reads=result.rfc_reads,
            rfc_writes=result.rfc_writes,
            rfc_read_hits=result.rfc_read_hits,
            rfc_read_misses=result.rfc_read_misses,
            rfc_fills=result.rfc_fills,
            rfc_writebacks=result.rfc_writebacks,
            l1_hit_rate=result.l1_hit_rate,
        )
        self._store(key, record)
        return record


# -- standard configurations --------------------------------------------------

def baseline_config(**overrides) -> GPUConfig:
    """The normalisation baseline: configuration #1 plus the 16KB the
    cached designs spend on their RFC (Section 5, "Comparison Points")."""
    return GPUConfig(mrf_size_kb=272).scaled(**overrides)


def table2_config(config_id: int, **overrides) -> GPUConfig:
    """Simulator configuration for a Table 2 design point."""
    from repro.power.tech import gpu_config_for
    return gpu_config_for(config_id, GPUConfig(), **overrides)


def sweep_config(latency_multiple: float, **overrides) -> GPUConfig:
    """Constant-size latency-sweep point (Figures 11-14)."""
    return baseline_config(
        mrf_latency_multiple=latency_multiple, **overrides
    )
