"""Tests for PREFETCH insertion, the compile pipeline, and analyses."""

import pytest

from repro.compiler import (
    compile_kernel,
    optimal_region_lengths,
    real_region_lengths,
    region_length_comparison,
)
from repro.ir import KernelBuilder, Opcode


def loop_kernel(trip_count=8):
    return (
        KernelBuilder("loop")
        .block("pre").alu(0, 0)
        .block("body")
        .alu(1, 1)
        .alu(2, 1, 0)
        .branch("body", trip_count=trip_count)
        .block("end")
        .alu(3, 2)
        .exit()
        .build()
    )


class TestCompileKernel:
    def test_rejects_unknown_region_kind(self):
        with pytest.raises(ValueError):
            compile_kernel(loop_kernel(), region_kind="basic-block")

    def test_source_kernel_untouched(self):
        kernel = loop_kernel()
        before = kernel.static_instruction_count
        compile_kernel(kernel)
        assert kernel.static_instruction_count == before

    def test_prefetch_at_every_header(self):
        compiled = compile_kernel(loop_kernel())
        for region in compiled.partition.regions:
            block = compiled.kernel.cfg.block(region.header)
            assert block.instructions[0].opcode is Opcode.PREFETCH

    def test_prefetch_vector_matches_working_set(self):
        compiled = compile_kernel(loop_kernel())
        for region in compiled.partition.regions:
            block = compiled.kernel.cfg.block(region.header)
            prefetch = block.instructions[0]
            assert set(prefetch.prefetch_registers()) == set(region.registers)

    def test_liveness_annotations_present(self):
        compiled = compile_kernel(loop_kernel())
        end_block = compiled.kernel.cfg.block("end")
        # 'alu(3, 2)' is the final consumer of r2.
        consumer = [i for i in end_block.instructions if 2 in i.srcs][0]
        assert 2 in consumer.dead_srcs

    def test_strand_kind_produces_strand_partition(self):
        compiled = compile_kernel(loop_kernel(), region_kind="strand")
        assert compiled.partition.kind == "strand"

    def test_compiled_kernel_traces(self):
        compiled = compile_kernel(loop_kernel())
        trace = compiled.kernel.trace_list()
        opcodes = {e.instruction.opcode for e in trace}
        assert Opcode.PREFETCH in opcodes
        assert trace[-1].instruction.opcode is Opcode.EXIT


class TestCodeSize:
    def test_overhead_orders(self):
        """Explicit-instruction scheme always costs more than embedded bit."""
        compiled = compile_kernel(loop_kernel())
        report = compiled.code_size
        assert report.explicit_instruction_overhead > report.embedded_bit_overhead
        assert report.embedded_bit_overhead > 0

    def test_overhead_scales_with_prefetch_count(self):
        small = compile_kernel(loop_kernel()).code_size
        # Tighter bound -> more intervals -> more prefetches.
        large = compile_kernel(loop_kernel(), max_registers=4).code_size
        assert large.prefetch_operations >= small.prefetch_operations

    def test_double_insertion_rejected(self):
        from repro.compiler import insert_prefetches
        compiled = compile_kernel(loop_kernel())
        with pytest.raises(ValueError):
            insert_prefetches(compiled.kernel, compiled.partition)


class TestRegionLengths:
    def test_real_lengths_exclude_prefetch(self):
        compiled = compile_kernel(loop_kernel(trip_count=8))
        lengths = real_region_lengths(compiled)
        body_instructions = sum(
            1 for e in compiled.kernel.trace()
            if e.instruction.opcode is not Opcode.PREFETCH
        )
        assert sum(lengths) == body_instructions

    def test_loop_in_one_region_yields_long_dynamic_interval(self):
        compiled = compile_kernel(loop_kernel(trip_count=16), max_registers=16)
        lengths = real_region_lengths(compiled)
        # The whole loop fits in one interval: its dynamic length must
        # cover all iterations (3 instructions x 16 iterations minimum).
        assert max(lengths) >= 48

    def test_optimal_lengths_cover_trace(self):
        kernel = loop_kernel(trip_count=4)
        trace = kernel.trace_list()
        lengths = optimal_region_lengths(iter(trace), max_registers=16)
        assert sum(lengths) == len(trace)

    def test_optimal_at_least_real_on_average(self):
        """Optimal ignores control-flow constraints, so its average dynamic
        length can only be >= the real one (the paper reports 89%)."""
        compiled = compile_kernel(loop_kernel(trip_count=8), max_registers=8)
        comparison = region_length_comparison(compiled)
        assert comparison["optimal"].average >= comparison["real"].average

    def test_tiny_bound_shortens_optimal_lengths(self):
        kernel = loop_kernel(trip_count=8)
        trace = kernel.trace_list()
        tight = optimal_region_lengths(iter(trace), max_registers=4)
        loose = optimal_region_lengths(iter(trace), max_registers=32)
        assert max(tight) <= max(loose)
        assert len(tight) >= len(loose)
