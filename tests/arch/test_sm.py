"""Integration tests for the SM simulator across policies."""

import pytest

from repro.arch import GPUConfig, StreamingMultiprocessor, WarpState
from repro.ir import KernelBuilder
from repro.policies import POLICIES, policy_by_name


def compute_kernel(iterations=10):
    return (
        KernelBuilder("compute")
        .block("entry").alu(0, 1).alu(2, 0)
        .block("loop")
        .fma(3, 0, 2, 3)
        .fma(4, 3, 0, 4)
        .branch("loop", trip_count=iterations)
        .block("end").exit()
        .build()
    )


def memory_kernel(iterations=10):
    return (
        KernelBuilder("memory")
        .block("entry").alu(0, 1)
        .block("loop")
        .load(2, stream=0, footprint=1 << 22)
        .fma(3, 2, 0, 3)
        .branch("loop", trip_count=iterations)
        .block("end")
        .store(3, stream=1, footprint=1 << 20)
        .exit()
        .build()
    )


def small_config(**overrides):
    defaults = dict(max_resident_warps=8, active_warps=4)
    defaults.update(overrides)
    return GPUConfig(**defaults)


class TestBasicExecution:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_all_policies_complete(self, policy):
        sm = StreamingMultiprocessor(small_config(), POLICIES[policy])
        result = sm.run(compute_kernel())
        assert result.cycles > 0
        assert result.ipc > 0

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_instruction_counts_match_traces(self, policy):
        kernel = compute_kernel()
        config = small_config()
        sm = StreamingMultiprocessor(config, POLICIES[policy])
        result = sm.run(kernel)
        warps = config.resident_warps_for(kernel.register_count)
        expected = kernel.dynamic_instruction_count() * warps
        assert result.instructions == expected

    def test_prefetches_not_counted_as_instructions(self):
        kernel = compute_kernel()
        config = small_config()
        bl = StreamingMultiprocessor(config, POLICIES["BL"]).run(kernel)
        ltrf = StreamingMultiprocessor(config, POLICIES["LTRF"]).run(kernel)
        assert bl.instructions == ltrf.instructions
        assert ltrf.prefetch_operations > 0

    def test_deterministic(self):
        kernel = memory_kernel()
        a = StreamingMultiprocessor(small_config(), POLICIES["LTRF"]).run(kernel)
        b = StreamingMultiprocessor(small_config(), POLICIES["LTRF"]).run(kernel)
        assert a.cycles == b.cycles
        assert a.mrf_reads == b.mrf_reads


class TestScheduling:
    def test_memory_kernel_deactivates_warps(self):
        sm = StreamingMultiprocessor(small_config(), POLICIES["BL"])
        result = sm.run(memory_kernel())
        assert result.deactivations > 0
        assert result.activations >= result.deactivations

    def test_compute_kernel_never_deactivates(self):
        sm = StreamingMultiprocessor(small_config(), POLICIES["BL"])
        result = sm.run(compute_kernel())
        assert result.deactivations == 0

    def test_resident_warps_respect_capacity(self):
        kernel = compute_kernel()
        config = small_config(mrf_size_kb=2)   # 16 warp-registers
        sm = StreamingMultiprocessor(config, POLICIES["BL"])
        result = sm.run(kernel)
        assert result.resident_warps < 8

    def test_explicit_resident_override(self):
        sm = StreamingMultiprocessor(small_config(), POLICIES["BL"])
        result = sm.run(compute_kernel(), resident_warps=2)
        assert result.resident_warps == 2

    def test_all_warps_finish(self):
        kernel = memory_kernel()
        config = small_config()
        sm = StreamingMultiprocessor(config, POLICIES["LTRF+"])
        executable = sm.policy.executable_kernel(kernel)
        from repro.arch.warp import Warp
        warps = [Warp(w, executable.trace_list(warp_id=w)) for w in range(4)]
        sm.policy.prepare(4)
        sm._simulate(warps)
        assert all(w.state is WarpState.FINISHED for w in warps)


class TestLatencyEffects:
    def test_slow_mrf_hurts_baseline(self):
        kernel = compute_kernel(iterations=20)
        fast = StreamingMultiprocessor(
            small_config(), POLICIES["BL"]).run(kernel)
        slow = StreamingMultiprocessor(
            small_config(mrf_latency_multiple=6.3), POLICIES["BL"]).run(kernel)
        assert slow.ipc < fast.ipc

    def test_ltrf_tolerates_slow_mrf_better_than_bl(self):
        kernel = compute_kernel(iterations=20)
        config = small_config(mrf_latency_multiple=6.3)
        bl = StreamingMultiprocessor(config, POLICIES["BL"]).run(kernel)
        ltrf = StreamingMultiprocessor(config, POLICIES["LTRF"]).run(kernel)
        assert ltrf.ipc > bl.ipc

    def test_ideal_ignores_latency_multiple(self):
        kernel = compute_kernel(iterations=20)
        fast = StreamingMultiprocessor(
            small_config(), POLICIES["Ideal"]).run(kernel)
        slow = StreamingMultiprocessor(
            small_config(mrf_latency_multiple=6.3), POLICIES["Ideal"]).run(kernel)
        assert slow.cycles == fast.cycles

    def test_ltrf_reduces_mrf_traffic(self):
        kernel = compute_kernel(iterations=20)
        config = small_config()
        bl = StreamingMultiprocessor(config, POLICIES["BL"]).run(kernel)
        ltrf = StreamingMultiprocessor(config, POLICIES["LTRF"]).run(kernel)
        assert ltrf.mrf_accesses < bl.mrf_accesses


class TestPolicyInvariants:
    def test_ltrf_always_hits(self):
        sm = StreamingMultiprocessor(small_config(), POLICIES["LTRF"])
        result = sm.run(memory_kernel())
        assert result.rfc_read_misses == 0
        assert result.rfc_hit_rate == 1.0

    def test_rfc_misses_exist(self):
        sm = StreamingMultiprocessor(small_config(), POLICIES["RFC"])
        result = sm.run(memory_kernel())
        assert result.rfc_read_misses > 0

    def test_ltrf_plus_moves_fewer_registers(self):
        kernel = memory_kernel(iterations=20)
        config = small_config()
        ltrf = StreamingMultiprocessor(config, POLICIES["LTRF"]).run(kernel)
        plus = StreamingMultiprocessor(config, POLICIES["LTRF+"]).run(kernel)
        assert (
            plus.extra["prefetch_registers_moved"]
            <= ltrf.extra["prefetch_registers_moved"]
        )

    def test_policy_by_name_roundtrip(self):
        for name in POLICIES:
            assert policy_by_name(name).name == name

    def test_policy_by_name_unknown(self):
        with pytest.raises(ValueError):
            policy_by_name("L2-prefetch")


def shared_memory_kernel(iterations=10):
    return (
        KernelBuilder("shared")
        .block("entry").alu(0, 1)
        .block("loop")
        .load(2, stream=0, footprint=16 * 1024, shared=True)
        .fma(3, 2, 0, 3)
        .branch("loop", trip_count=iterations)
        .block("end")
        .store(3, stream=1, footprint=16 * 1024, shared=True)
        .exit()
        .build()
    )


class TestSharedMemory:
    """Shared-memory LD/ST are scratchpad accesses: fixed latency,
    outside the L1/LLC hierarchy (the collapsed branch in SM._issue)."""

    def test_shared_ops_bypass_cache_hierarchy(self):
        sm = StreamingMultiprocessor(small_config(), POLICIES["BL"])
        result = sm.run(shared_memory_kernel())
        assert sm.memory.stats.l1_accesses == 0
        assert result.l1_hit_rate == 0.0

    def test_shared_ops_never_deactivate(self):
        sm = StreamingMultiprocessor(small_config(), POLICIES["BL"])
        result = sm.run(shared_memory_kernel())
        assert result.deactivations == 0

    def test_shared_load_pays_fixed_latency(self):
        # A dependent chain through a shared load must cost more cycles
        # than the same chain through a 1-cycle ALU op.
        def chain(shared):
            builder = KernelBuilder("chain").block("entry").alu(0, 1)
            builder = builder.block("loop")
            if shared:
                builder = builder.load(
                    2, stream=0, footprint=16 * 1024, shared=True
                )
            else:
                builder = builder.alu(2, 0)
            kernel = (
                builder.fma(3, 2, 0, 3)
                .branch("loop", trip_count=20)
                .block("end").exit()
                .build()
            )
            sm = StreamingMultiprocessor(small_config(), POLICIES["BL"])
            return sm.run(kernel, resident_warps=1)

        assert chain(shared=True).cycles > chain(shared=False).cycles
