"""The compile pipeline: kernel -> region-annotated executable kernel.

``compile_kernel`` is the single entry point the policies and experiment
harness use.  It clones the input kernel (passes mutate CFGs), runs
static liveness (dead-operand bits for LTRF+), forms prefetch regions
with the requested former, and inserts PREFETCH operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.kernel import Kernel
from repro.ir.liveness import LivenessInfo, annotate_dead_operands
from repro.compiler.prefetch import CodeSizeReport, insert_prefetches
from repro.compiler.regions import RegionPartition
from repro.compiler.register_intervals import (
    DEFAULT_MAX_REGISTERS,
    form_register_intervals,
)
from repro.compiler.strands import form_strands

#: Region formers selectable by name.
REGION_KINDS = ("register-interval", "strand")


@dataclass
class CompiledKernel:
    """Output of the compile pipeline.

    ``kernel`` is a private clone with PREFETCH operations inserted;
    ``partition`` maps its blocks to prefetch regions; ``liveness`` holds
    dead-operand information (computed before PREFETCH insertion, so the
    per-point tables index the *original* instruction positions -- use
    the instructions' own ``dead_srcs`` annotations during simulation).
    """

    source: Kernel
    kernel: Kernel
    partition: RegionPartition
    liveness: LivenessInfo
    code_size: CodeSizeReport
    max_registers: int

    @property
    def prefetch_count(self) -> int:
        return self.code_size.prefetch_operations


def compile_kernel(
    kernel: Kernel,
    region_kind: str = "register-interval",
    max_registers: int = DEFAULT_MAX_REGISTERS,
    run_pass2: bool = True,
) -> CompiledKernel:
    """Compile ``kernel`` for a software-managed hierarchical register file.

    ``region_kind`` selects the prefetch-region former:
    ``"register-interval"`` (the paper's Algorithms 1 and 2) or
    ``"strand"`` (the SHRF/Gebhart baseline).  ``run_pass2=False``
    disables Algorithm 2 (pass-2 ablation; register-intervals only).
    """
    if region_kind not in REGION_KINDS:
        raise ValueError(
            f"unknown region kind {region_kind!r}; expected one of {REGION_KINDS}"
        )
    clone = kernel.clone()
    liveness = annotate_dead_operands(clone)
    if region_kind == "register-interval":
        partition = form_register_intervals(
            clone, max_registers=max_registers, run_pass2=run_pass2
        )
    else:
        partition = form_strands(clone, max_registers=max_registers)
    code_size = insert_prefetches(clone, partition)
    clone.cfg.validate()
    return CompiledKernel(
        source=kernel,
        kernel=clone,
        partition=partition,
        liveness=liveness,
        code_size=code_size,
        max_registers=max_registers,
    )
