"""Tests for the register model and PREFETCH bit-vector encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import (
    MAX_ARCH_REGS,
    check_register,
    decode_bitvector,
    encode_bitvector,
    popcount,
    register_name,
)


class TestCheckRegister:
    def test_accepts_zero(self):
        assert check_register(0) == 0

    def test_accepts_max_minus_one(self):
        assert check_register(MAX_ARCH_REGS - 1) == MAX_ARCH_REGS - 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_register(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            check_register(MAX_ARCH_REGS)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_register(True)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            check_register("r4")


class TestRegisterName:
    def test_formats_ptx_style(self):
        assert register_name(12) == "r12"

    def test_validates(self):
        with pytest.raises(ValueError):
            register_name(300)


class TestBitvector:
    def test_empty_set_encodes_to_zero(self):
        assert encode_bitvector([]) == 0

    def test_single_register(self):
        assert encode_bitvector([5]) == 1 << 5

    def test_duplicates_are_idempotent(self):
        assert encode_bitvector([3, 3, 3]) == 1 << 3

    def test_decode_orders_ascending(self):
        assert list(decode_bitvector(encode_bitvector([9, 2, 250]))) == [2, 9, 250]

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            list(decode_bitvector(-1))

    def test_decode_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            list(decode_bitvector(1 << MAX_ARCH_REGS))

    def test_popcount(self):
        assert popcount(encode_bitvector([1, 2, 3])) == 3

    @given(st.sets(st.integers(min_value=0, max_value=MAX_ARCH_REGS - 1)))
    def test_roundtrip(self, regs):
        vector = encode_bitvector(regs)
        assert set(decode_bitvector(vector)) == regs
        assert popcount(vector) == len(regs)

    @given(
        st.sets(st.integers(min_value=0, max_value=MAX_ARCH_REGS - 1)),
        st.sets(st.integers(min_value=0, max_value=MAX_ARCH_REGS - 1)),
    )
    def test_union_is_bitwise_or(self, a, b):
        assert encode_bitvector(a | b) == encode_bitvector(a) | encode_bitvector(b)
