"""Launcher abstraction: how a batch of simulation chunks executes.

A *launcher* owns the mechanics of running one chunk of grid points
somewhere -- on a local process pool, in a freshly spawned
``repro worker-chunk`` subprocess, or on a remote host over SSH.  It
deliberately knows nothing about retries, timeouts, quarantine, or
result bookkeeping: that robustness machinery lives in
:mod:`repro.launchers.scheduler` and is shared by every backend, so a
flaky SSH host and a hung pool worker are survived by the same code
path.

The contract is synchronous-submission / polled-completion:

* :meth:`Launcher.submit` starts a chunk and returns a
  :class:`ChunkHandle` immediately.
* :meth:`ChunkHandle.poll` is non-blocking: ``None`` while running,
  else a :class:`ChunkOutcome` whose status is ``"ok"`` (aligned
  results delivered), ``"died"`` (the executing worker vanished --
  killed, crashed, non-zero exit), or ``"error"`` (the worker stayed
  alive but the chunk raised; the exception text travels in
  ``message``).
* :meth:`ChunkHandle.kill` force-stops the chunk (used by the
  scheduler's wall-clock timeout).  A launcher whose kill cannot be
  scoped to one chunk (the local process pool: terminating a worker
  breaks the whole pool) declares ``kill_is_collateral = True`` and
  the scheduler re-queues innocent in-flight chunks uncharged.

Timeout classification ("timed-out" vs "died") is the scheduler's
call -- a launcher only ever reports what it observed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class LauncherError(Exception):
    """The backend itself is unusable (cannot start or submit).

    Raised by launchers for environment-level failures -- a missing
    ssh binary, no configured hosts -- as opposed to a chunk failing.
    The scheduler reacts by degrading to serial in-process execution
    rather than crashing the sweep.
    """


@dataclass
class Chunk:
    """One schedulable unit: a slice of ``(key, SimRequest)`` pairs.

    ``id`` is assigned in deterministic dispatch order (the order
    :func:`repro.experiments.runner._dispatch_chunks` produced the
    chunks), which is what makes fault-plan selectors like
    ``kill:chunk=2`` reproducible across runs and backends.
    ``failures`` counts delivery attempts that did not complete --
    the retry budget charges against it.
    """

    id: int
    items: List[Tuple[str, object]]      # [(cache key, SimRequest)]
    failures: int = 0
    #: Monotonic-clock time before which this chunk must not be
    #: re-submitted (set by the scheduler's backoff on a retry).
    eligible_at: float = 0.0
    #: Health history of this chunk's attempts ("died", "timed-out",
    #: "error"), newest last; surfaced in degradation diagnostics.
    history: List[str] = field(default_factory=list)


@dataclass
class ChunkOutcome:
    """What happened to one submitted chunk attempt."""

    status: str                          # "ok" | "died" | "error"
    #: For "ok": [(RunRecord, SimTelemetry, cached)] aligned with
    #: ``chunk.items``; ``cached`` is True when the worker served the
    #: record from an already-flushed store entry instead of
    #: re-simulating (a killed predecessor's partial progress).
    results: Optional[list] = None
    message: str = ""


class ChunkHandle:
    """A launcher-specific in-flight chunk.  Subclasses implement
    :meth:`poll` and :meth:`kill`."""

    def __init__(self, chunk: Chunk) -> None:
        self.chunk = chunk

    def poll(self) -> Optional[ChunkOutcome]:
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError


class Launcher:
    """Base class: lifecycle plus the collateral-kill declaration."""

    name = "abstract"
    #: True when killing one chunk necessarily disturbs the others
    #: sharing the backend (the local pool).  The scheduler re-queues
    #: disturbed chunks without charging their retry budget.
    kill_is_collateral = False

    def __init__(self) -> None:
        #: Times the backend was torn down and rebuilt mid-grid
        #: (e.g. a broken process pool replaced).  The runner maps
        #: this onto ``RunnerStats.pool_retries``.
        self.restarts = 0

    def max_workers(self, requested: int) -> int:
        """The in-flight cap for ``requested`` workers (ssh clamps to
        the number of configured hosts)."""
        return max(1, requested)

    def start(self, workers: int) -> None:
        """Acquire backend resources.  May raise LauncherError."""

    def submit(self, chunk: Chunk) -> ChunkHandle:
        raise NotImplementedError

    def shutdown(self, kill: bool = False) -> None:
        """Release resources; with ``kill``, stop in-flight work too."""


def worker_id() -> Optional[str]:
    """This process's launcher-assigned worker identity, or ``None``.

    Set (via the ``LTRF_WORKER_ID`` environment variable) only inside
    launcher-spawned workers -- which is the guard that keeps the
    fault-injection harness from ever firing in the orchestrating
    process: a quarantined chunk re-run serially in the parent must
    not re-trigger the ``kill`` that quarantined it.
    """
    return os.environ.get("LTRF_WORKER_ID")
