"""Per-warp execution state.

A warp executes its dynamic trace in order.  The SM advances warps
through three states:

* ``ACTIVE`` -- in the active pool, eligible to issue;
* ``INACTIVE`` -- descheduled by the two-level scheduler (after a long-
  latency miss) or not yet admitted to the active pool;
* ``FINISHED`` -- trace exhausted.

The warp carries an in-order scoreboard (register -> ready cycle) for
data hazards and its :class:`~repro.arch.wcb.WarpControlBlock` for the
register-caching policies.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.arch.wcb import WarpControlBlock
from repro.ir.kernel import TraceEntry


class WarpState(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"
    FINISHED = "finished"


class Warp:
    """One warp's dynamic execution state."""

    def __init__(self, warp_id: int, trace: List[TraceEntry]) -> None:
        self.warp_id = warp_id
        self.trace = trace
        self.position = 0
        self.state = WarpState.INACTIVE
        #: Earliest cycle this warp may issue its next instruction.
        self.next_ready = 0
        #: For INACTIVE warps: cycle its blocking event resolves.
        self.resume_at = 0
        self.wcb = WarpControlBlock(warp_id)
        self.scoreboard: Dict[int, int] = {}
        self.instructions_issued = 0
        self.prefetches_issued = 0

    # -- trace cursor -------------------------------------------------------

    @property
    def current(self) -> Optional[TraceEntry]:
        if self.position < len(self.trace):
            return self.trace[self.position]
        return None

    @property
    def done(self) -> bool:
        return self.position >= len(self.trace)

    def advance(self) -> None:
        self.position += 1

    # -- hazards ---------------------------------------------------------------

    def dependencies_ready_at(self) -> int:
        """Cycle at which the current instruction's registers are hazard-free.

        Reads wait for pending writers (RAW); writes wait for pending
        writers of the same register (WAW) -- sufficient for an in-order
        pipeline with out-of-order completion.
        """
        entry = self.current
        if entry is None:
            return self.next_ready
        ready = 0
        scoreboard = self.scoreboard
        for reg in entry.instruction.srcs:
            ready = max(ready, scoreboard.get(reg, 0))
        for reg in entry.instruction.dsts:
            ready = max(ready, scoreboard.get(reg, 0))
        return ready

    def earliest_issue(self) -> int:
        return max(self.next_ready, self.dependencies_ready_at())

    def note_write(self, register: int, ready_cycle: int) -> None:
        self.scoreboard[register] = ready_cycle

    def __repr__(self) -> str:
        return (
            f"Warp({self.warp_id}, {self.state.value}, "
            f"pc={self.position}/{len(self.trace)})"
        )
