"""Register-file management policies: the paper's comparison points.

========  =========================================================
Name      Design
========  =========================================================
BL        conventional non-cached register file
Ideal     BL with a zero-latency-overhead MRF (upper bound)
RFC       hardware register cache, LRU, no prefetch (Gebhart ISCA'11)
SHRF      strand-scoped compile-time managed cache (Gebhart MICRO'11)
LTRF      register-interval prefetching (this paper)
LTRF+     LTRF with operand-liveness awareness (this paper)
========  =========================================================

plus two ablation variants: ``LTRF-strand`` (LTRF hardware on strand
regions, Figure 14) and ``LTRF-pass1`` (Algorithm 2 disabled).
"""

from repro.policies.base import RegisterPolicy
from repro.policies.baseline import BaselinePolicy, IdealPolicy
from repro.policies.ltrf import LTRFPass1Policy, LTRFPolicy, LTRFStrandPolicy
from repro.policies.ltrf_plus import LTRFPlusPolicy
from repro.policies.rfc import RFCPolicy
from repro.policies.shrf import SHRFPolicy

#: Policies by display name (the names used throughout the paper).
POLICIES = {
    policy.name: policy
    for policy in (
        BaselinePolicy,
        IdealPolicy,
        RFCPolicy,
        SHRFPolicy,
        LTRFPolicy,
        LTRFPlusPolicy,
        LTRFStrandPolicy,
        LTRFPass1Policy,
    )
}


def policy_by_name(name: str):
    """Look up a policy class by its paper name (e.g. ``"LTRF+"``)."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None


__all__ = [
    "BaselinePolicy",
    "IdealPolicy",
    "LTRFPass1Policy",
    "LTRFPlusPolicy",
    "LTRFPolicy",
    "LTRFStrandPolicy",
    "POLICIES",
    "RFCPolicy",
    "RegisterPolicy",
    "SHRFPolicy",
    "policy_by_name",
]
