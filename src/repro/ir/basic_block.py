"""Basic blocks: straight-line instruction sequences with one terminator.

A block may end in a ``BRA`` (conditional branches additionally have a
fall-through edge to the next block in layout order) or in ``EXIT``.
Blocks that end in neither fall through unconditionally.  Edges are kept
on the CFG (:mod:`repro.ir.cfg`), not on the blocks, so that blocks stay
reusable value objects while the CFG owns connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.ir.instruction import Instruction, Opcode


@dataclass
class BasicBlock:
    """A labelled basic block.

    ``label`` is unique within a kernel.  ``instructions`` includes the
    terminator (if any).  The block is intentionally mutable: compiler
    passes split blocks and insert PREFETCH operations in place.
    """

    label: str
    instructions: List[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("basic block label must be non-empty")
        self._check_terminator_position()

    def _check_terminator_position(self) -> None:
        for index, instruction in enumerate(self.instructions):
            terminal = instruction.opcode in (Opcode.BRA, Opcode.EXIT)
            if terminal and index != len(self.instructions) - 1:
                raise ValueError(
                    f"{self.label}: terminator {instruction} is not last"
                )

    # -- terminator helpers ----------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is a branch or exit, else ``None``."""
        if self.instructions and self.instructions[-1].opcode in (
            Opcode.BRA, Opcode.EXIT,
        ):
            return self.instructions[-1]
        return None

    @property
    def falls_through(self) -> bool:
        """True when control can continue to the layout successor."""
        terminator = self.terminator
        if terminator is None:
            return True
        if terminator.opcode is Opcode.EXIT:
            return False
        return terminator.is_conditional  # unconditional BRA never falls

    @property
    def branch_target(self) -> Optional[str]:
        terminator = self.terminator
        if terminator is not None and terminator.opcode is Opcode.BRA:
            return terminator.target
        return None

    # -- register accounting ----------------------------------------------

    def registers(self) -> FrozenSet[int]:
        """All architectural registers referenced in this block."""
        used: set = set()
        for instruction in self.instructions:
            used |= instruction.registers()
        return frozenset(used)

    def defs(self) -> FrozenSet[int]:
        """Registers written anywhere in this block."""
        written: set = set()
        for instruction in self.instructions:
            written.update(instruction.dsts)
        return frozenset(written)

    def upward_exposed_uses(self) -> FrozenSet[int]:
        """Registers read before any write in this block (liveness *use*)."""
        written: set = set()
        used: set = set()
        for instruction in self.instructions:
            for src in instruction.srcs:
                if src not in written:
                    used.add(src)
            written.update(instruction.dsts)
        return frozenset(used)

    def append(self, instruction: Instruction) -> None:
        """Append an instruction, preserving the terminator-last invariant."""
        if self.terminator is not None:
            raise ValueError(f"{self.label}: cannot append past terminator")
        self.instructions.append(instruction)

    def split_at(self, index: int, new_label: str) -> "BasicBlock":
        """Split this block before ``index``; return the new tail block.

        Used by register-interval formation (Algorithm 1, lines 30-37)
        when a single block's working set exceeds the cache partition.
        The caller is responsible for rewiring CFG edges.
        """
        if not 0 < index < len(self.instructions):
            raise ValueError(
                f"{self.label}: split index {index} out of range"
            )
        tail = BasicBlock(new_label, self.instructions[index:])
        del self.instructions[index:]
        return tail

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        body = "\n".join(f"  {i}" for i in self.instructions)
        return f"{self.label}:\n{body}"
