"""Static experiments: Table 1, Figure 2, Table 2.

These three reproductions do not need the timing simulator:

* **Table 1** derives the register file capacity each suite workload
  needs to reach maximum TLP on Fermi (48 warps/SM, 64-register cap)
  and Maxwell (64 warps/SM, 256-register cap) from the workload specs'
  register demands;
* **Figure 2** is published per-generation on-chip memory data;
* **Table 2** carries the published design points and cross-checks them
  against our analytic CACTI-style model.
"""

from __future__ import annotations

from repro.arch.config import WARP_REGISTER_BYTES
from repro.experiments.report import ExperimentResult, mean
from repro.power import cacti
from repro.power.tech import TABLE2
from repro.workloads import SUITE

#: Maximum resident warps per SM for the two product generations.
FERMI_WARPS = 48
MAXWELL_WARPS = 64
FERMI_BASELINE_KB = 128
MAXWELL_BASELINE_KB = 256


def _demand_kb(registers: int, warps: int) -> float:
    return registers * warps * WARP_REGISTER_BYTES / 1024


def table1() -> ExperimentResult:
    """Average and maximum register file demand across the 35 workloads."""
    fermi = [
        _demand_kb(min(spec.registers_fermi, 64), FERMI_WARPS)
        for spec in SUITE.values()
    ]
    maxwell = [
        _demand_kb(spec.registers, MAXWELL_WARPS)
        for spec in SUITE.values()
    ]
    result = ExperimentResult(
        "Table 1",
        "Register file capacity required to maximise TLP (35 workloads)",
        ("GPU (baseline RF)", "Average required", "Maximum required"),
    )
    result.add_row(
        f"Fermi ({FERMI_BASELINE_KB}KB)",
        f"{mean(fermi):.0f}KB ({mean(fermi) / FERMI_BASELINE_KB:.1f}x)",
        f"{max(fermi):.0f}KB ({max(fermi) / FERMI_BASELINE_KB:.1f}x)",
    )
    result.add_row(
        f"Maxwell ({MAXWELL_BASELINE_KB}KB)",
        f"{mean(maxwell):.0f}KB ({mean(maxwell) / MAXWELL_BASELINE_KB:.1f}x)",
        f"{max(maxwell):.0f}KB ({max(maxwell) / MAXWELL_BASELINE_KB:.1f}x)",
    )
    result.summary = {
        "fermi_avg_x": mean(fermi) / FERMI_BASELINE_KB,
        "fermi_max_x": max(fermi) / FERMI_BASELINE_KB,
        "maxwell_avg_x": mean(maxwell) / MAXWELL_BASELINE_KB,
        "maxwell_max_x": max(maxwell) / MAXWELL_BASELINE_KB,
    }
    return result


#: Figure 2 source data: on-chip memory (MB) per flagship generation,
#: from the product whitepapers the paper cites (GF100, GK110, GM200,
#: GP100).
FIGURE2_DATA = {
    "Fermi (2010)": {"l1_shared": 1.0, "l2": 0.75, "register_file": 2.0},
    "Kepler (2012)": {"l1_shared": 0.96, "l2": 1.5, "register_file": 3.75},
    "Maxwell (2014)": {"l1_shared": 2.25, "l2": 3.0, "register_file": 6.0},
    "Pascal (2016)": {"l1_shared": 4.9, "l2": 4.0, "register_file": 14.3},
}


def fig2() -> ExperimentResult:
    """On-chip memory capacity across GPU generations."""
    result = ExperimentResult(
        "Figure 2",
        "On-chip memory components across NVIDIA generations (MB)",
        ("Generation", "L1D+Shared", "L2", "Register file", "RF share"),
    )
    for generation, parts in FIGURE2_DATA.items():
        total = sum(parts.values())
        result.add_row(
            generation, parts["l1_shared"], parts["l2"],
            parts["register_file"], f"{parts['register_file'] / total:.0%}",
        )
    pascal = FIGURE2_DATA["Pascal (2016)"]
    result.summary = {
        "pascal_rf_share": pascal["register_file"] / sum(pascal.values()),
    }
    return result


def table2() -> ExperimentResult:
    """Design points with analytic-model cross-check of the latencies."""
    result = ExperimentResult(
        "Table 2",
        "Register file designs (published vs analytic model)",
        ("Config", "Cell", "#Banks", "Bank size", "Capacity",
         "Area", "Power", "Latency (paper)", "Latency (model)"),
    )
    errors = []
    for point in TABLE2.values():
        topology = (
            "butterfly" if point.network == "F. Butterfly" else "crossbar"
        )
        modelled = cacti.design_latency(
            16 * point.bank_size_scale, point.banks, point.cell, topology
        )
        errors.append(abs(modelled - point.latency_scale) / point.latency_scale)
        result.add_row(
            f"#{point.config_id}", point.cell, f"{point.banks_scale}x",
            f"{point.bank_size_scale}x", f"{point.capacity_scale}x",
            f"{point.area_scale}x", f"{point.power_scale}x",
            f"{point.latency_scale}x", f"{modelled:.2f}x",
        )
    result.summary = {"mean_model_error": mean(errors)}
    return result
