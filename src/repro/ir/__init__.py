"""PTX-like kernel intermediate representation.

Public surface of the IR layer: registers, instructions, basic blocks,
CFGs, kernels with trace generation, the construction DSL, and liveness.
"""

from repro.ir.basic_block import BasicBlock
from repro.ir.builder import KernelBuilder
from repro.ir.cfg import CFG, CFGError
from repro.ir.instruction import (
    EXECUTION_LATENCY,
    LONG_LATENCY_OPCODES,
    MEMORY_OPCODES,
    Instruction,
    MemorySpec,
    Opcode,
)
from repro.ir.kernel import Kernel, TraceEntry
from repro.ir.liveness import LivenessInfo, analyze, annotate_dead_operands
from repro.ir.registers import (
    MAX_ARCH_REGS,
    check_register,
    decode_bitvector,
    encode_bitvector,
    popcount,
    register_name,
)
from repro.ir.serialize import (
    SCHEMA_VERSION,
    KernelSerializationError,
    dumps_kernel,
    fingerprint_of,
    kernel_fingerprint,
    kernel_from_dict,
    kernel_to_dict,
    load_kernel,
    loads_kernel,
    save_kernel,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "CFGError",
    "EXECUTION_LATENCY",
    "Instruction",
    "Kernel",
    "KernelBuilder",
    "KernelSerializationError",
    "LONG_LATENCY_OPCODES",
    "LivenessInfo",
    "MAX_ARCH_REGS",
    "MEMORY_OPCODES",
    "MemorySpec",
    "Opcode",
    "SCHEMA_VERSION",
    "TraceEntry",
    "analyze",
    "annotate_dead_operands",
    "check_register",
    "decode_bitvector",
    "dumps_kernel",
    "encode_bitvector",
    "fingerprint_of",
    "kernel_fingerprint",
    "kernel_from_dict",
    "kernel_to_dict",
    "load_kernel",
    "loads_kernel",
    "popcount",
    "register_name",
    "save_kernel",
]
