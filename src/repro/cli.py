"""Command-line interface to the reproduction.

Usage (after ``pip install -e .``):

    python -m repro.cli list-workloads
    python -m repro.cli simulate backprop --policy LTRF --config 6
    python -m repro.cli compile backprop --regions strand
    python -m repro.cli experiment fig9a fig10 table4
    python -m repro.cli sweep backprop --policies BL,LTRF,LTRF+

Every subcommand prints plain text; experiment names mirror the paper's
tables and figures (see DESIGN.md's experiment index).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.arch import GPUConfig, StreamingMultiprocessor
from repro.compiler import compile_kernel
from repro.experiments import (
    Runner,
    fig2, fig3, fig4, fig9, fig10, fig11, fig12, fig13, fig14,
    max_tolerable_latency, normalized_sweep, overheads,
    table1, table2, table2_config, table4,
)
from repro.policies import POLICIES, policy_by_name
from repro.workloads import SUITE, get_kernel, workload_names

#: Experiment registry: name -> callable(runner) -> ExperimentResult.
EXPERIMENTS = {
    "table1": lambda runner: table1(),
    "fig2": lambda runner: fig2(),
    "table2": lambda runner: table2(),
    "fig3": fig3,
    "fig4": fig4,
    "fig9a": lambda runner: fig9(runner, 6),
    "fig9b": lambda runner: fig9(runner, 7),
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "table4": lambda runner: table4(),
    "overheads": overheads,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LTRF (ASPLOS 2018) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list the 35-workload suite")
    sub.add_parser("list-policies", help="list register-file policies")
    sub.add_parser(
        "list-experiments", help="list reproducible tables/figures"
    )

    simulate = sub.add_parser("simulate", help="run one simulation")
    simulate.add_argument("workload", choices=sorted(SUITE))
    simulate.add_argument("--policy", default="LTRF",
                          choices=sorted(POLICIES))
    simulate.add_argument("--config", type=int, default=1,
                          help="Table 2 design point (1-7)")
    simulate.add_argument("--latency", type=float, default=None,
                          help="override the MRF latency multiple")

    compile_cmd = sub.add_parser("compile", help="show prefetch regions")
    compile_cmd.add_argument("workload", choices=sorted(SUITE))
    compile_cmd.add_argument("--regions", default="register-interval",
                             choices=("register-interval", "strand"))
    compile_cmd.add_argument("--max-registers", type=int, default=16)

    experiment = sub.add_parser("experiment",
                                help="regenerate paper tables/figures")
    experiment.add_argument("names", nargs="+",
                            choices=sorted(EXPERIMENTS) + ["all"])

    sweep = sub.add_parser("sweep", help="latency-tolerance sweep")
    sweep.add_argument("workload", choices=sorted(SUITE))
    sweep.add_argument("--policies", default="BL,RFC,LTRF,LTRF+",
                       help="comma-separated policy names")
    return parser


def _cmd_simulate(args) -> None:
    config = table2_config(args.config) if args.config != 1 else GPUConfig()
    if args.latency is not None:
        config = config.with_latency_multiple(args.latency)
    kernel = get_kernel(args.workload)
    sm = StreamingMultiprocessor(config, policy_by_name(args.policy))
    result = sm.run(kernel)
    print(f"workload           {args.workload}")
    print(f"policy             {args.policy}")
    print(f"config             #{args.config} "
          f"({config.mrf_size_kb}KB, {config.mrf_latency_multiple}x)")
    print(f"resident warps     {result.resident_warps}")
    print(f"cycles             {result.cycles}")
    print(f"instructions       {result.instructions}")
    print(f"IPC                {result.ipc:.3f}")
    print(f"MRF accesses       {result.mrf_accesses}")
    print(f"RFC hit rate       {result.rfc_hit_rate:.2f}")
    print(f"L1 hit rate        {result.l1_hit_rate:.2f}")
    print(f"(de)activations    {result.activations}/{result.deactivations}")


def _cmd_compile(args) -> None:
    kernel = get_kernel(args.workload)
    compiled = compile_kernel(
        kernel, region_kind=args.regions, max_registers=args.max_registers
    )
    print(f"{args.workload}: {compiled.partition.region_count()} "
          f"{args.regions} region(s), "
          f"{compiled.prefetch_count} PREFETCH operation(s)")
    print(f"code size: +{compiled.code_size.embedded_bit_overhead:.1%} "
          f"(embedded bit) / "
          f"+{compiled.code_size.explicit_instruction_overhead:.1%} "
          f"(explicit instruction)")
    for region in compiled.partition.regions:
        regs = ",".join(f"r{r}" for r in sorted(region.registers))
        print(f"  region {region.id:3d} header={region.header:16s} "
              f"|WS|={region.working_set_size:2d} {{{regs}}}")


def _cmd_experiment(names: List[str]) -> None:
    runner = Runner()
    selected = sorted(EXPERIMENTS) if "all" in names else names
    for name in selected:
        result = EXPERIMENTS[name](runner)
        print(result.render())
        print()


def _cmd_sweep(args) -> None:
    runner = Runner()
    for policy in args.policies.split(","):
        policy = policy.strip()
        sweep = normalized_sweep(runner, policy, args.workload)
        tolerable = max_tolerable_latency(sweep)
        curve = "  ".join(f"{value:.2f}" for value in sweep)
        print(f"{policy:12s} {curve}  -> tolerates {tolerable:.1f}x")


def main(argv: List[str] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list-workloads":
        for name in workload_names():
            spec = SUITE[name]
            print(f"{name:16s} {spec.category:22s} "
                  f"regs={spec.registers:3d} (fermi {spec.registers_fermi})")
    elif args.command == "list-policies":
        for name in sorted(POLICIES):
            print(name)
    elif args.command == "list-experiments":
        for name in sorted(EXPERIMENTS):
            print(name)
    elif args.command == "simulate":
        _cmd_simulate(args)
    elif args.command == "compile":
        _cmd_compile(args)
    elif args.command == "experiment":
        _cmd_experiment(args.names)
    elif args.command == "sweep":
        _cmd_sweep(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
