"""Simulation runner: caching plus a parallel batch execution engine.

Every experiment reduces to "simulate workload X under policy P on
configuration C".  The runner centralises that, memoises results both
in memory and on disk (keyed by a fingerprint of the inputs), and
returns slim :class:`RunRecord` objects.  The latency sweeps of
Figures 11-14 revisit the same grid points, so caching cuts the full
reproduction from thousands of simulations to a few hundred.

Grid points share nothing but the cache, so they are embarrassingly
parallel: :meth:`Runner.simulate_many` accepts a whole experiment grid
of :class:`SimRequest` objects, deduplicates them against the cache
*before* dispatch, fans the remaining misses out over a
``ProcessPoolExecutor``, and merges results back keyed by request --
the returned list is aligned with the input order regardless of
completion order, so ``jobs=N`` is bit-for-bit equivalent to serial
execution.

On-disk entries are published atomically (temp file + ``os.replace``),
so concurrent runners -- pool workers, parallel pytest sessions, two
terminals -- can share one cache directory: readers only ever observe
complete files, and a corrupt entry (e.g. from a crash predating the
atomic writes) is deleted on load and regenerated.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Iterable, List, Optional

from repro.arch.config import GPUConfig
from repro.arch.sm import StreamingMultiprocessor
from repro.ir import kernel_fingerprint
from repro.policies import policy_by_name
from repro.util import atomic_write_text
from repro.workloads import (
    UnknownWorkloadError,
    get_kernel,
    workload_fingerprint,
)


def default_cache_dir() -> str:
    """Resolve the default on-disk cache location.

    ``LTRF_CACHE_DIR`` wins when set; otherwise the cache lives under
    the current working directory.  (Deriving it from ``__file__``, as
    early versions did, writes next to site-packages for a
    pip-installed package.)
    """
    configured = os.environ.get("LTRF_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.getcwd(), ".ltrf_cache")


#: Sentinel distinguishing "use the default" from "no disk cache" (None).
_DEFAULT_CACHE = object()


@dataclass(frozen=True)
class RunRecord:
    """Slim, JSON-serialisable summary of one simulation."""

    workload: str
    policy: str
    ipc: float
    cycles: int
    instructions: int
    prefetch_operations: int
    resident_warps: int
    activations: int
    deactivations: int
    mrf_reads: int
    mrf_writes: int
    rfc_reads: int
    rfc_writes: int
    rfc_read_hits: int
    rfc_read_misses: int
    rfc_fills: int
    rfc_writebacks: int
    l1_hit_rate: float

    @property
    def mrf_accesses(self) -> int:
        return self.mrf_reads + self.mrf_writes

    @property
    def rfc_accesses(self) -> int:
        return self.rfc_reads + self.rfc_writes

    @property
    def rfc_hit_rate(self) -> float:
        total = self.rfc_read_hits + self.rfc_read_misses
        return self.rfc_read_hits / total if total else 0.0


@dataclass(frozen=True)
class SimRequest:
    """One grid point: the unit of work of the batch engine."""

    workload: str
    policy: str
    config: GPUConfig
    seed: int = 0


@dataclass(frozen=True)
class SimTelemetry:
    """Host-side execution report for one simulation.

    Kept out of :class:`RunRecord` on purpose: records are cached on
    disk and must stay byte-identical across engines and machines,
    while telemetry (wall-clock, event counts) is inherently
    run-specific.  The runner aggregates it so figures can report
    simulated-vs-host-time statistics alongside their tables.
    """

    engine: str
    host_seconds: float
    cycles: int
    instructions: int
    cycles_skipped: int
    event_counts: Dict[str, int]
    #: Content fingerprint of the kernel this run actually simulated.
    #: For generated workloads it always equals the fingerprint in the
    #: request's cache key; for file-backed workloads the file may be
    #: rewritten between the caller's key computation and the (worker's)
    #: execution, and the runner uses this to store the record under
    #: the content that produced it (see Runner._content_key).
    kernel_fingerprint: str = ""


def execute_request_with_telemetry(request: SimRequest):
    """Run one simulation, bypassing every cache.

    Returns ``(record, telemetry)``.  Module-level (rather than a
    ``Runner`` method) so pool workers can unpickle it; the simulator
    is deterministic in ``(request,)``, which is what makes parallel
    and serial execution interchangeable (the record, not the
    telemetry, is the deterministic part).
    """
    kernel = get_kernel(request.workload)
    sm = StreamingMultiprocessor(
        request.config, policy_by_name(request.policy)
    )
    result = sm.run(kernel, seed=request.seed)
    record = RunRecord(
        workload=request.workload,
        policy=request.policy,
        ipc=result.ipc,
        cycles=result.cycles,
        instructions=result.instructions,
        prefetch_operations=result.prefetch_operations,
        resident_warps=result.resident_warps,
        activations=result.activations,
        deactivations=result.deactivations,
        mrf_reads=result.mrf_reads,
        mrf_writes=result.mrf_writes,
        rfc_reads=result.rfc_reads,
        rfc_writes=result.rfc_writes,
        rfc_read_hits=result.rfc_read_hits,
        rfc_read_misses=result.rfc_read_misses,
        rfc_fills=result.rfc_fills,
        rfc_writebacks=result.rfc_writebacks,
        l1_hit_rate=result.l1_hit_rate,
    )
    telemetry = SimTelemetry(
        engine=result.engine,
        host_seconds=result.host_seconds,
        cycles=result.cycles,
        instructions=result.instructions,
        cycles_skipped=result.cycles_skipped,
        event_counts=result.event_counts,
        kernel_fingerprint=kernel_fingerprint(kernel),
    )
    return record, telemetry


def execute_request(request: SimRequest) -> RunRecord:
    """Run one simulation, bypassing every cache (record only)."""
    return execute_request_with_telemetry(request)[0]


@dataclass
class RunnerStats:
    """Cache/engine counters, exposed for tests and tooling."""

    memory_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0
    batch_requests: int = 0
    batch_deduplicated: int = 0
    batch_dispatched: int = 0
    # Aggregated simulation telemetry (simulated-vs-host-time stats).
    host_seconds: float = 0.0
    simulated_cycles: int = 0
    simulated_instructions: int = 0
    cycles_skipped: int = 0
    event_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def simulated_cycles_per_host_second(self) -> float:
        if self.host_seconds <= 0.0:
            return 0.0
        return self.simulated_cycles / self.host_seconds

    def note_telemetry(self, telemetry: "SimTelemetry") -> None:
        """Fold one simulation's execution report into the aggregate."""
        self.host_seconds += telemetry.host_seconds
        self.simulated_cycles += telemetry.cycles
        self.simulated_instructions += telemetry.instructions
        self.cycles_skipped += telemetry.cycles_skipped
        for kind, count in telemetry.event_counts.items():
            self.event_counts[kind] = self.event_counts.get(kind, 0) + count


def _config_fingerprint(config: GPUConfig) -> str:
    payload = {
        field.name: getattr(config, field.name)
        for field in fields(config)
        if field.name != "memory"
    }
    payload["memory"] = asdict(config.memory)
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


class Runner:
    """Cached simulation front-end used by all experiments."""

    def __init__(self, cache_dir: Optional[str] = _DEFAULT_CACHE) -> None:
        if cache_dir is _DEFAULT_CACHE:
            cache_dir = default_cache_dir()
        self.cache_dir = cache_dir
        self._memory_cache: Dict[str, RunRecord] = {}
        self.stats = RunnerStats()
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # -- cache plumbing -----------------------------------------------------

    def _key(self, workload: str, policy: str, config: GPUConfig,
             seed: int) -> str:
        # The kernel content fingerprint is part of the key: a name is
        # just a lookup handle (a generator edit, a re-parameterised
        # scenario, or a replaced .kernel.json can silently change what
        # it denotes), and serving a cached record for different kernel
        # content would be silently wrong results.  Fingerprints are
        # memoised per process, so this costs one kernel build per
        # workload name.
        return (
            f"{workload}__{policy}__{_config_fingerprint(config)}__{seed}"
            f"__k{workload_fingerprint(workload)}"
        )

    def request_key(self, request: SimRequest) -> str:
        return self._key(
            request.workload, request.policy, request.config, request.seed
        )

    @staticmethod
    def _content_key(key: str, telemetry: SimTelemetry) -> str:
        """The key a freshly simulated record must be *stored* under.

        Normally identical to ``key``.  A file-backed kernel, though,
        can be rewritten between the caller's key computation and the
        (possibly pool-worker) execution; the worker reports what it
        actually simulated, and storing under that fingerprint keeps
        the persistent cache content-correct through the race.
        """
        fingerprint = telemetry.kernel_fingerprint
        if not fingerprint or key.endswith(f"__k{fingerprint}"):
            return key
        return f"{key.rsplit('__k', 1)[0]}__k{fingerprint}"

    def _cache_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        safe = key.replace("/", "_").replace("+", "plus")
        if len(safe) > 180:
            # File-backed workloads put a whole path in the key; keep
            # the entry filename within every filesystem's limits.
            safe = hashlib.sha1(safe.encode()).hexdigest()
        return os.path.join(self.cache_dir, f"{safe}.json")

    def _load(self, key: str) -> Optional[RunRecord]:
        if key in self._memory_cache:
            self.stats.memory_hits += 1
            return self._memory_cache[key]
        path = self._cache_path(key)
        if path is None:
            return None
        try:
            handle = open(path)
        except FileNotFoundError:
            return None
        try:
            with handle:
                read_stat = os.fstat(handle.fileno())
                payload = json.load(handle)
            record = RunRecord(**payload)
        except (ValueError, TypeError, KeyError):
            # Truncated (crash predating atomic writes) or stale-schema
            # entry: delete it so the next store regenerates it cleanly.
            # Only remove the exact file we inspected -- a concurrent
            # writer may have already republished a valid entry here.
            try:
                if os.stat(path).st_ino == read_stat.st_ino:
                    os.remove(path)
            except OSError:
                pass
            return None
        self.stats.disk_hits += 1
        self._memory_cache[key] = record
        return record

    def _store(self, key: str, record: RunRecord) -> None:
        self._memory_cache[key] = record
        path = self._cache_path(key)
        if path is None:
            return
        # Atomic publish, so concurrent readers never observe a
        # partially written entry and racing writers (which compute
        # identical payloads) last-win.
        atomic_write_text(path, json.dumps(asdict(record)))

    # -- simulation ---------------------------------------------------------

    def simulate(self, workload: str, policy: str, config: GPUConfig,
                 seed: int = 0) -> RunRecord:
        """Run (or fetch from cache) one simulation."""
        request = SimRequest(workload, policy, config, seed)
        key = self.request_key(request)
        cached = self._load(key)
        if cached is not None:
            return cached
        record, telemetry = execute_request_with_telemetry(request)
        self.stats.simulated += 1
        self.stats.note_telemetry(telemetry)
        self._store(self._content_key(key, telemetry), record)
        return record

    def simulate_many(self, requests: Iterable[SimRequest],
                      jobs: Optional[int] = None) -> List[RunRecord]:
        """Run a whole grid of simulations, optionally in parallel.

        Requests are deduplicated (against each other and against the
        memory/disk cache) before dispatch; only genuine misses are
        simulated.  With ``jobs`` > 1 the misses run on a process pool.
        The returned list is aligned with ``requests`` and independent
        of completion order, so results are identical for any ``jobs``.
        """
        requests = list(requests)
        keys = [self.request_key(request) for request in requests]
        self.stats.batch_requests += len(requests)

        results: Dict[str, RunRecord] = {}
        pending: Dict[str, SimRequest] = {}
        for key, request in zip(keys, requests):
            if key in results or key in pending:
                self.stats.batch_deduplicated += 1
                continue
            cached = self._load(key)
            if cached is not None:
                results[key] = cached
            else:
                pending[key] = request
        self.stats.batch_dispatched += len(pending)

        if pending:
            items = list(pending.items())
            if jobs is not None and jobs > 1 and len(items) > 1:
                workers = min(jobs, len(items))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(
                            execute_request_with_telemetry, request
                        ): key
                        for key, request in items
                    }
                    for future in as_completed(futures):
                        key = futures[future]
                        try:
                            record, telemetry = future.result()
                        except UnknownWorkloadError as error:
                            raise RuntimeError(
                                f"workload "
                                f"{pending[key].workload!r} could not "
                                "be resolved in a worker process: "
                                "runtime registrations are "
                                "per-process.  Export it to a "
                                ".kernel.json file, add it to the "
                                "suite or built-in families, or run "
                                "with jobs=1."
                            ) from error
                        self.stats.simulated += 1
                        self.stats.note_telemetry(telemetry)
                        self._store(self._content_key(key, telemetry),
                                    record)
                        results[key] = record
            else:
                for key, request in items:
                    record, telemetry = execute_request_with_telemetry(
                        request
                    )
                    self.stats.simulated += 1
                    self.stats.note_telemetry(telemetry)
                    self._store(self._content_key(key, telemetry), record)
                    results[key] = record
        return [results[key] for key in keys]

    # -- telemetry ----------------------------------------------------------

    def telemetry_summary(self) -> Dict[str, object]:
        """Simulated-vs-host-time statistics for everything this runner
        actually simulated (cache hits contribute nothing)."""
        stats = self.stats
        return {
            "simulations": stats.simulated,
            "cache_hits": stats.hits,
            "host_seconds": stats.host_seconds,
            "simulated_cycles": stats.simulated_cycles,
            "simulated_instructions": stats.simulated_instructions,
            "cycles_skipped": stats.cycles_skipped,
            "simulated_cycles_per_host_second":
                stats.simulated_cycles_per_host_second,
            "event_counts": dict(stats.event_counts),
        }

    def render_telemetry(self) -> str:
        """One-paragraph human-readable version of the summary."""
        summary = self.telemetry_summary()
        events = summary["event_counts"]
        event_text = ", ".join(
            f"{kind}={count}" for kind, count in sorted(events.items())
        ) or "none"
        rate = summary["simulated_cycles_per_host_second"]
        return (
            f"simulated {summary['simulations']} run(s) "
            f"({summary['cache_hits']} cache hit(s)): "
            f"{summary['simulated_cycles']} cycles "
            f"({summary['cycles_skipped']} skipped) in "
            f"{summary['host_seconds']:.2f}s host time "
            f"= {rate:,.0f} cycles/s; events: {event_text}"
        )


def simulate_vs_baseline(runner: "Runner", workloads: Iterable[str],
                         policies: Iterable[str], config: GPUConfig,
                         jobs: Optional[int] = None):
    """Batch-simulate each workload under ``policies`` on ``config``
    plus the BL normalisation baseline (the grid shape shared by
    Figures 3, 9, 10 and the overhead accounting).

    Returns ``[(workload, baseline_record, policy_records), ...]`` with
    ``policy_records`` aligned with ``policies``.
    """
    workloads = list(workloads)
    policies = list(policies)
    base_config = baseline_config()
    grid = []
    for name in workloads:
        grid.append(SimRequest(name, "BL", base_config))
        grid.extend(SimRequest(name, policy, config) for policy in policies)
    records = runner.simulate_many(grid, jobs=jobs)
    width = 1 + len(policies)
    return [
        (
            name,
            records[width * index],
            records[width * index + 1:width * (index + 1)],
        )
        for index, name in enumerate(workloads)
    ]


# -- standard configurations --------------------------------------------------

def baseline_config(**overrides) -> GPUConfig:
    """The normalisation baseline: configuration #1 plus the 16KB the
    cached designs spend on their RFC (Section 5, "Comparison Points")."""
    return GPUConfig(mrf_size_kb=272).scaled(**overrides)


def table2_config(config_id: int, **overrides) -> GPUConfig:
    """Simulator configuration for a Table 2 design point."""
    from repro.power.tech import gpu_config_for
    return gpu_config_for(config_id, GPUConfig(), **overrides)


def sweep_config(latency_multiple: float, **overrides) -> GPUConfig:
    """Constant-size latency-sweep point (Figures 11-14)."""
    return baseline_config(
        mrf_latency_multiple=latency_multiple, **overrides
    )
