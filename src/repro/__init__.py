"""LTRF: Latency-Tolerant Register Files for GPUs (ASPLOS 2018) -- a
from-scratch Python reproduction.

Layers
------
``repro.ir``
    PTX-like kernel IR: instructions, CFGs, trace generation, liveness.
``repro.compiler``
    The paper's software half: register-interval formation
    (Algorithms 1 and 2), strands, PREFETCH insertion.
``repro.arch``
    The hardware half: a cycle-level SM with a two-level warp scheduler,
    banked main register file, partitioned register file cache, WCB.
``repro.policies``
    The comparison points: BL, Ideal, RFC, SHRF, LTRF, LTRF+,
    LTRF-strand, LTRF-pass1.
``repro.power``
    Table 2 design points, analytic CACTI-style scaling, energy model.
``repro.workloads``
    Pluggable workload frontend: registry, synthetic
    CUDA-SDK/Rodinia/Parboil stand-ins (35-workload suite), parametric
    scenario families, ``.kernel.json`` files.
``repro.experiments``
    One entry point per paper table/figure, with cached simulation.

Quickstart
----------
>>> from repro import GPUConfig, StreamingMultiprocessor, policy_by_name
>>> from repro.workloads import get_kernel
>>> sm = StreamingMultiprocessor(GPUConfig(), policy_by_name("LTRF"))
>>> result = sm.run(get_kernel("backprop"))
>>> result.ipc > 0
True
"""

from repro.arch import (
    GPUConfig, MemoryConfig, SimulationResult, StreamingMultiprocessor,
)
from repro.compiler import CompiledKernel, compile_kernel
from repro.ir import Kernel, KernelBuilder, kernel_fingerprint
from repro.policies import POLICIES, policy_by_name
from repro.workloads import (
    WorkloadRegistry,
    WorkloadSpec,
    build_kernel,
    default_registry,
    get_kernel,
)

__version__ = "1.0.0"

__all__ = [
    "CompiledKernel",
    "GPUConfig",
    "Kernel",
    "KernelBuilder",
    "MemoryConfig",
    "POLICIES",
    "SimulationResult",
    "StreamingMultiprocessor",
    "WorkloadRegistry",
    "WorkloadSpec",
    "build_kernel",
    "compile_kernel",
    "default_registry",
    "get_kernel",
    "kernel_fingerprint",
    "policy_by_name",
    "__version__",
]
