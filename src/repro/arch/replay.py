"""Tier-3 replay engine: latency-parameterized trace replay.

The headline figures (fig11-14) sweep a latency knob over otherwise
identical (kernel, policy) points, yet the event engine re-runs the
full policy stack -- working-set evolution, LRU slices, liveness
bookkeeping, invariant checks -- at every grid point, even though none
of those *structural* decisions depend on the latency being swept.
This engine splits the two concerns:

* **Record** (once per grid row): run the event engine with the policy
  wrapped in a recording proxy that logs, per warp and per trace
  position, exactly which MRF banks each hook touched, every
  cycle-independent latency it returned, and the ``to_mrf``
  (deactivation) flag each result write was handed.  The flattened
  per-position log is the *timeline*: the latency-parameterized
  dependency structure of the run (issue order constraints live in the
  scoreboard/hazard arrays; memory requests keep their addresses; RFC
  hit/miss classes and WCB drains become recorded bank lists).  It is
  cached in :mod:`repro.compiler.cache` keyed by ``(kernel
  fingerprint, policy, seed, resident warps, arch fingerprint with the
  latency knobs struck out)``.

* **Replay** (every other point of the row): re-run the *scheduling
  skeleton* -- wake-up heap, round-robin issue, scoreboard, live
  :class:`~repro.arch.main_register_file.BankCalendar` reservations
  and a live :class:`~repro.arch.memory.MemoryHierarchy` at the new
  latency -- but replace every policy hook with its recorded step: a
  precomputed constant or a flat list of bank ids to reserve.  No
  policy objects, no RFC/WCB bookkeeping, no per-instruction attribute
  chains: each step is one flat tuple.

Separability and the fallback ladder
------------------------------------

Replay is *exact*, never approximate: a replayed point's
:class:`~repro.arch.sm.SimulationResult` equals the event engine's at
that latency, field for field (pinned by
``tests/arch/test_engine_equivalence.py``).  Three guards make that
safe:

1. **Static gate** -- only policies declaring
   :attr:`~repro.policies.base.RegisterPolicy.latency_separable` are
   recorded; anything else routes straight through the event engine
   (``fallback-static``).
2. **Shape check at record time** -- the recorded hook streams must
   match the shapes the replayer understands (operand = optional RFC
   constant floor + MRF reads; results = plain writes; prefetch /
   activate / drain = at most one bulk transfer).  A policy that
   passes the static gate but records an unsupported shape caches a
   non-replayable timeline and every point of the row falls back.
3. **Live divergence check at replay time** -- L1/LLC hit levels
   depend on the *global* interleaving of memory accesses, which a
   latency change can reorder; a load whose live hit level implies a
   different deactivation decision than the recorded one invalidates
   the warp's remaining recorded stream, so replay aborts and the
   point re-runs on the event engine (``fallback-diverged``).  Every
   deactivation flag is validated at issue, so a completed replay
   proves its own structural premise.

Telemetry: each produced result carries ``replay_outcome`` --
``recorded`` | ``replayed`` | ``fallback-static`` |
``fallback-diverged`` -- which the runner aggregates into
replayed/recorded/fallback counters (surfaced by ``repro report`` and
the CLI telemetry line).
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.arch.events import EventKind, EventQueue
from repro.arch.main_register_file import BankCalendar
from repro.arch.memory import MemoryHierarchy
from repro.arch.serialize import fingerprint_of_arch_sans_latency
from repro.compiler.cache import (
    cached_kernel_fingerprint,
    cached_trace_list,
    store_timeline,
    timeline_for,
)
from repro.ir.instruction import Opcode

#: Step-tuple kinds (index 0 of every step; hazard registers are always
#: index 1 so the requeue probe is uniform).
_PREFETCH = 0        # (0, hazard, bw_banks|None, br_banks|None, br_add)
_FIXED_CONST = 1     # (1, hazard, dsts, complete_delta, w_banks|None)
_FIXED_LIVE = 2      # (2, hazard, dsts, floor, o_banks, exec, w_banks|None)
_LONG_CONST = 3      # (3, hazard, dsts, start_delta, addr, deact, w_banks)
_LONG_LIVE = 4       # (4, hazard, dsts, floor, o_banks, addr, deact, w_banks)


class ReplayDivergence(Exception):
    """A live deactivation decision contradicted the recorded one."""


class _UnsupportedStructure(Exception):
    """A recorded hook stream has a shape the replayer cannot evaluate."""


class Timeline:
    """One recorded, latency-parameterized dependency timeline.

    Everything here is *structural*: valid at any latency point of the
    recording's sans-latency equivalence class, as long as every live
    deactivation decision matches the recorded one (checked at replay).
    """

    __slots__ = (
        "replayable", "reason", "steps", "activations", "deactivations",
        "finishes", "resident_warps", "instructions", "prefetch_operations",
        "activation_count", "deactivation_count", "mrf_reads", "mrf_writes",
        "rfc_stats", "extra", "divergences", "replays_served",
    )

    def __init__(self) -> None:
        self.replayable = False
        #: Why the timeline cannot replay (diagnostic; empty when it can).
        self.reason = ""
        #: Diverged replay attempts against this row (across re-anchors).
        self.divergences = 0
        #: Successful replays served since this timeline was recorded.
        self.replays_served = 0
        #: Per warp: one step tuple per trace position.
        self.steps: List[List[tuple]] = []
        #: Per warp: (br_banks|None, br_add, const_latency) per activation.
        self.activations: List[List[tuple]] = []
        #: Per warp: bulk-write bank ids (or None) per deactivation.
        self.deactivations: List[List[Optional[tuple]]] = []
        #: Per warp: retirement-drain bank ids, or None.
        self.finishes: List[Optional[tuple]] = []
        self.resident_warps = 0
        # Structural result totals (latency-independent given matching
        # deactivation flags; the anchor run's observed values).
        self.instructions = 0
        self.prefetch_operations = 0
        self.activation_count = 0
        self.deactivation_count = 0
        self.mrf_reads = 0
        self.mrf_writes = 0
        self.rfc_stats: Tuple[int, int, int, int, int, int] = (0,) * 6
        self.extra: dict = {}


class _ReplayWarp:
    """Minimal warp state for the replay skeleton (no trace, no WCB)."""

    __slots__ = ("warp_id", "steps", "n", "position", "next_ready",
                 "resume_at", "scoreboard", "ai", "di")

    def __init__(self, warp_id: int, steps: List[tuple]) -> None:
        self.warp_id = warp_id
        self.steps = steps
        self.n = len(steps)
        self.position = 0
        self.next_ready = 0
        self.resume_at = 0
        self.scoreboard: Dict[int, int] = {}
        self.ai = 0      # next activation record to consume
        self.di = 0      # next deactivation record to consume


# -- recording ----------------------------------------------------------------


class _RecordingMRF:
    """Transparent MRF proxy: delegates every call, logging (op, regs,
    returned completion) into the phase buffer the policy wrapper
    resets (to None) before each hook call.  The buffer is allocated
    lazily on the first logged op, so hooks that never touch the MRF --
    the common case for cache-hit policies -- cost no allocation."""

    __slots__ = ("_mrf", "ops")

    def __init__(self, mrf) -> None:
        self._mrf = mrf
        self.ops: Optional[list] = None

    def read(self, warp_id, register, cycle):
        done = self._mrf.read(warp_id, register, cycle)
        ops = self.ops
        if ops is None:
            ops = self.ops = []
        ops.append(("r", (register,), done))
        return done

    def read_group(self, warp_id, registers, cycle):
        done = self._mrf.read_group(warp_id, registers, cycle)
        ops = self.ops
        if ops is None:
            ops = self.ops = []
        ops.append(("r", tuple(registers), done))
        return done

    def write(self, warp_id, register, cycle):
        done = self._mrf.write(warp_id, register, cycle)
        ops = self.ops
        if ops is None:
            ops = self.ops = []
        ops.append(("w", (register,), done))
        return done

    def bulk_read(self, warp_id, registers, cycle):
        regs = tuple(registers)
        done = self._mrf.bulk_read(warp_id, regs, cycle)
        if regs:        # empty bulk ops are inert (no reservation)
            ops = self.ops
            if ops is None:
                ops = self.ops = []
            ops.append(("br", regs, done))
        return done

    def bulk_write(self, warp_id, registers, cycle):
        regs = tuple(registers)
        done = self._mrf.bulk_write(warp_id, regs, cycle)
        if regs:
            ops = self.ops
            if ops is None:
                ops = self.ops = []
            ops.append(("bw", regs, done))
        return done


class _RecordingPolicy:
    """Wraps the real policy, forwarding every hook while logging its
    MRF calls (via the proxy), returned latencies, and to_mrf flags,
    segmented per (warp, trace position) and per scheduler occurrence.

    ``read_group`` and per-register ``read`` log identically ("r"):
    the MRF documents them as timing- and stats-identical, and the
    replayer evaluates both as a max over per-bank reservations.
    """

    def __init__(self, inner, proxy: _RecordingMRF) -> None:
        self._inner = inner
        self._proxy = proxy
        self.name = inner.name
        self._rfc_stats = inner.rfc.stats
        self._rfc_latency = inner.config.rfc_latency
        # Per-warp logs, indexed by warp_id (sized in ``prepare``, which
        # the SM calls before any hook).  Dict lookups per instruction
        # are measurable at recording scale.
        #: one record per trace position, in issue order.
        self.log: List[list] = []
        #: (ops, returned latency, cycle) per activation.
        self.acts: List[list] = []
        #: (ops, returned drain) per deactivation.
        self.deacts: List[list] = []
        #: (ops, returned drain) at retirement, or None.
        self.fins: List[Optional[tuple]] = []

    # -- run-shape hooks (forwarded verbatim) --------------------------

    def executable_kernel(self, kernel):
        return self._inner.executable_kernel(kernel)

    def prepare(self, resident_warps: int) -> None:
        self.log = [[] for _ in range(resident_warps)]
        self.acts = [[] for _ in range(resident_warps)]
        self.deacts = [[] for _ in range(resident_warps)]
        self.fins = [None] * resident_warps
        self._inner.prepare(resident_warps)

    def extra_stats(self) -> dict:
        return self._inner.extra_stats()

    # -- per-instruction hooks -----------------------------------------

    def operand_read_latency(self, warp, instruction, cycle):
        proxy = self._proxy
        proxy.ops = None
        hits_before = self._rfc_stats.read_hits
        latency = self._inner.operand_read_latency(warp, instruction, cycle)
        # The one non-MRF latency component the shape check admits: the
        # constant RFC hit path (observable through the hit counter).
        floor = self._rfc_latency if (
            self._rfc_stats.read_hits > hits_before
        ) else 0
        self.log[warp.warp_id].append(
            ["O", proxy.ops, latency, floor, None, False]
        )
        return latency

    def result_write(self, warp, instruction, cycle, to_mrf=False):
        proxy = self._proxy
        proxy.ops = None
        self._inner.result_write(warp, instruction, cycle, to_mrf=to_mrf)
        record = self.log[warp.warp_id][-1]
        record[4] = proxy.ops
        record[5] = to_mrf

    def prefetch(self, warp, instruction, cycle):
        proxy = self._proxy
        proxy.ops = None
        completion = self._inner.prefetch(warp, instruction, cycle)
        self.log[warp.warp_id].append(
            ["P", proxy.ops, completion, cycle]
        )
        return completion

    # -- scheduler hooks -----------------------------------------------

    def activate(self, warp, cycle):
        proxy = self._proxy
        proxy.ops = None
        latency = self._inner.activate(warp, cycle)
        self.acts[warp.warp_id].append((proxy.ops, latency, cycle))
        return latency

    def deactivate(self, warp, cycle):
        proxy = self._proxy
        proxy.ops = None
        drain = self._inner.deactivate(warp, cycle)
        self.deacts[warp.warp_id].append((proxy.ops, drain))
        return drain

    def finish(self, warp, cycle):
        proxy = self._proxy
        proxy.ops = None
        drain = self._inner.finish(warp, cycle)
        self.fins[warp.warp_id] = (proxy.ops, drain)
        return drain


# -- timeline construction ----------------------------------------------------


def _read_banks(ops, warp_id: int, num_banks: int) -> tuple:
    """Flatten an operand phase's MRF reads to bank ids, in call order."""
    if not ops:
        return ()
    banks = []
    for op, regs, _done in ops:
        if op != "r":
            raise _UnsupportedStructure(
                f"operand phase performed a {op!r} MRF call"
            )
        for register in regs:
            banks.append((warp_id + register) % num_banks)
    return tuple(banks)


def _bulk_record(ops, expected_drain, warp_id: int, num_banks: int,
                 what: str) -> Optional[tuple]:
    """Flatten a drain phase (deactivate/finish): at most one bulk
    write whose completion is the returned drain."""
    if not ops:
        if expected_drain is not None:
            raise _UnsupportedStructure(
                f"{what} returned a drain without an MRF transfer"
            )
        return None
    if len(ops) != 1 or ops[0][0] != "bw" or ops[0][2] != expected_drain:
        raise _UnsupportedStructure(f"unsupported {what} MRF stream")
    return tuple(
        (warp_id + register) % num_banks for register in ops[0][1]
    )


def _build_timeline(recorder: _RecordingPolicy, traces, mrf_config,
                    operand_depth: int) -> Timeline:
    """Flatten a recording into per-position step tuples (see the step
    kinds at module top).  Raises :class:`_UnsupportedStructure` when
    any recorded stream falls outside the replayable shapes."""
    timeline = Timeline()
    num_banks = mrf_config.mrf_banks
    transfer = mrf_config.mrf_transfer_latency
    crossbar = mrf_config.crossbar_regs_per_cycle
    opcode_prefetch = Opcode.PREFETCH

    for warp_id, trace in enumerate(traces):
        records = recorder.log[warp_id]
        if len(records) != len(trace):
            raise _UnsupportedStructure(
                f"warp {warp_id}: {len(records)} hook records for "
                f"{len(trace)} trace positions"
            )
        steps: List[tuple] = []
        for entry, record in zip(trace, records):
            instruction = entry.instruction
            hazard = instruction.hazard_registers
            if instruction.opcode is opcode_prefetch:
                if record[0] != "P":
                    raise _UnsupportedStructure("PREFETCH position did not "
                                                "record a prefetch phase")
                _, ops, completion, at_cycle = record
                bw_banks = br_banks = None
                br_add = 0
                remaining = list(ops or ())
                if remaining and remaining[0][0] == "bw":
                    bw_banks = tuple(
                        (warp_id + r) % num_banks for r in remaining[0][1]
                    )
                    remaining.pop(0)
                if remaining and remaining[0][0] == "br":
                    regs = remaining[0][1]
                    br_banks = tuple(
                        (warp_id + r) % num_banks for r in regs
                    )
                    br_add = transfer + -(-len(regs) // crossbar)
                    if completion != remaining[0][2]:
                        raise _UnsupportedStructure(
                            "prefetch completion is not its bulk read's"
                        )
                    remaining.pop(0)
                elif completion != at_cycle + 1:
                    raise _UnsupportedStructure(
                        "prefetch without a bulk read must complete next "
                        "cycle"
                    )
                if remaining:
                    raise _UnsupportedStructure(
                        "unsupported prefetch MRF stream"
                    )
                steps.append((_PREFETCH, hazard, bw_banks, br_banks, br_add))
                continue

            _, ops, latency, floor, result_ops, to_mrf = record
            o_banks = _read_banks(ops, warp_id, num_banks)
            w_banks = None
            if result_ops:
                for op, _regs, _done in result_ops:
                    if op != "w":
                        raise _UnsupportedStructure(
                            f"result phase performed a {op!r} MRF call"
                        )
                w_banks = tuple(
                    (warp_id + r) % num_banks
                    for _op, regs, _done in result_ops
                    for r in regs
                )
            dsts = instruction.dsts
            if instruction.is_long_latency:
                deact = bool(to_mrf)
                if o_banks:
                    steps.append((_LONG_LIVE, hazard, dsts, floor, o_banks,
                                  entry.address, deact, w_banks))
                else:
                    excess = latency - operand_depth
                    start_delta = excess if excess > 0 else 0
                    steps.append((_LONG_CONST, hazard, dsts, start_delta,
                                  entry.address, deact, w_banks))
            elif o_banks:
                steps.append((_FIXED_LIVE, hazard, dsts, floor, o_banks,
                              instruction.execution_latency, w_banks))
            else:
                excess = latency - operand_depth
                start_delta = excess if excess > 0 else 0
                steps.append((_FIXED_CONST, hazard, dsts,
                              start_delta + instruction.execution_latency,
                              w_banks))
        timeline.steps.append(steps)

        activations = []
        for ops, latency, at_cycle in recorder.acts[warp_id]:
            if not ops:
                activations.append((None, 0, latency))
                continue
            if len(ops) != 1 or ops[0][0] != "br" or (
                ops[0][2] - at_cycle != latency
            ):
                raise _UnsupportedStructure("unsupported activation stream")
            regs = ops[0][1]
            activations.append((
                tuple((warp_id + r) % num_banks for r in regs),
                transfer + -(-len(regs) // crossbar),
                0,
            ))
        timeline.activations.append(activations)

        timeline.deactivations.append([
            _bulk_record(ops, drain, warp_id, num_banks, "deactivate")
            for ops, drain in recorder.deacts[warp_id]
        ])
        fin = recorder.fins[warp_id]
        timeline.finishes.append(
            None if fin is None
            else _bulk_record(fin[0], fin[1], warp_id, num_banks, "finish")
        )
    return timeline


def _record_timeline(sm_cls, config, policy_factory, kernel, seed,
                     resident_warps, executable):
    """Run the event engine once with recording wrappers installed.

    Returns ``(inner_sm, result, timeline)``; the result is the
    anchor's own (exact) simulation outcome, usable for the grid point
    that triggered the recording.
    """
    inner = sm_cls(config, policy_factory, engine="event")
    proxy = _RecordingMRF(inner.mrf)
    real_policy = inner.policy
    real_policy.mrf = proxy          # policies resolve self.mrf per call
    recorder = _RecordingPolicy(real_policy, proxy)
    inner.policy = recorder
    result = inner.run(kernel, seed=seed, resident_warps=resident_warps,
                       executable=executable)
    try:
        traces = [
            cached_trace_list(executable, w, seed)
            for w in range(result.resident_warps)
        ]
        timeline = _build_timeline(
            recorder, traces, inner.mrf.config, config.operand_pipeline_depth
        )
        timeline.replayable = True
    except _UnsupportedStructure as error:
        timeline = Timeline()
        timeline.reason = str(error)
    timeline.resident_warps = result.resident_warps
    timeline.instructions = result.instructions
    timeline.prefetch_operations = result.prefetch_operations
    timeline.activation_count = result.activations
    timeline.deactivation_count = result.deactivations
    timeline.mrf_reads = result.mrf_reads
    timeline.mrf_writes = result.mrf_writes
    stats = inner.rfc.stats
    timeline.rfc_stats = (stats.reads, stats.writes, stats.read_hits,
                          stats.read_misses, stats.fills, stats.writebacks)
    timeline.extra = result.extra
    return inner, result, timeline


# -- replay skeleton ----------------------------------------------------------


def _simulate_replay(timeline: Timeline, config, mrf_config,
                     memory: MemoryHierarchy,
                     queue: EventQueue) -> Tuple[int, int]:
    """Re-run the event engine's scheduling skeleton from a timeline.

    Structure mirrors ``StreamingMultiprocessor._simulate_event`` (the
    equivalence suite pins the two to each other); policy hook calls
    are replaced by recorded steps, and the MRF is inlined to direct
    :class:`BankCalendar` reservations against precomputed bank ids
    (``read``/``read_group``/``bulk_*`` update the ``now`` low-water
    mark exactly as :class:`MainRegisterFile` does; ``write`` does
    not).  Raises :class:`ReplayDivergence` the moment a live
    deactivation decision contradicts the recorded stream.

    Returns ``(cycles, cycles_skipped)``.
    """
    from repro.arch.sm import MAX_CYCLES

    heap = queue._heap
    active_slots = config.active_warps
    issue_width = config.issue_width
    operand_depth = config.operand_pipeline_depth

    banks = [BankCalendar() for _ in range(mrf_config.mrf_banks)]
    occupancy = mrf_config.mrf_bank_occupancy
    bank_latency = mrf_config.mrf_bank_latency
    access_latency = bank_latency + mrf_config.mrf_transfer_latency
    now = 0

    memory_response = EventKind.MEMORY_RESPONSE
    prefetch_arrival = EventKind.PREFETCH_ARRIVAL
    scoreboard_release = EventKind.SCOREBOARD_RELEASE
    wcb_drain = EventKind.WCB_DRAIN
    memory_access = memory.access
    all_acts = timeline.activations
    all_deacts = timeline.deactivations
    finishes = timeline.finishes

    warps = [
        _ReplayWarp(warp_id, steps)
        for warp_id, steps in enumerate(timeline.steps)
    ]
    seq = queue._seq
    pushed_memory = pushed_prefetch = pushed_scoreboard = 0
    pushed_drain = 0
    active_count = 0
    pool: Dict[int, _ReplayWarp] = {}
    resumable = [(0, warp.warp_id, warp) for warp in warps]
    remaining = len(warps)
    requeue: List[_ReplayWarp] = []
    cycle = 0
    rr_next = 0
    skipped = 0

    try:
        while True:
            # 1. Drain due completions from the wake-up heap.
            while heap and heap[0][0] <= cycle:
                _, _, kind, payload = heappop(heap)
                if payload is None:
                    continue             # instrumentation-only (WCB drain)
                if kind == memory_response:
                    heappush(
                        resumable,
                        (payload.resume_at, payload.warp_id, payload),
                    )
                else:
                    pool[payload.warp_id] = payload

            # 2. Fill free active slots, earliest-resolved warp first.
            while resumable and active_count < active_slots:
                _, _, warp = heappop(resumable)
                records = all_acts[warp.warp_id]
                index = warp.ai
                if index >= len(records):
                    raise ReplayDivergence("activation stream exhausted")
                warp.ai = index + 1
                br_banks, br_add, const = records[index]
                if br_banks is None:
                    latency = const
                else:
                    if cycle > now:
                        now = cycle
                    last = cycle
                    for bank in br_banks:
                        done = banks[bank].reserve(
                            cycle, occupancy, now
                        ) + bank_latency
                        if done > last:
                            last = done
                    latency = last + br_add - cycle
                next_ready = warp.next_ready = cycle + latency
                active_count += 1
                scoreboard = warp.scoreboard
                deps = 0
                if scoreboard:
                    get = scoreboard.get
                    for reg in warp.steps[warp.position][1]:
                        pending = get(reg, 0)
                        if pending > deps:
                            deps = pending
                if next_ready >= deps:
                    if next_ready <= cycle:
                        pool[warp.warp_id] = warp
                    else:
                        heappush(heap, (next_ready, seq,
                                        prefetch_arrival, warp))
                        seq += 1
                        pushed_prefetch += 1
                elif deps <= cycle:
                    pool[warp.warp_id] = warp
                else:
                    heappush(heap, (deps, seq, scoreboard_release, warp))
                    seq += 1
                    pushed_scoreboard += 1

            if pool:
                # 3a. Up to issue_width schedulers each issue from a
                # distinct warp this cycle, round-robin for fairness.
                issues_left = issue_width
                while pool:
                    if len(pool) == 1:
                        warp_id, warp = pool.popitem()
                        rr_next = warp_id + 1
                    else:
                        best = wrap = None
                        for candidate in pool:
                            if candidate >= rr_next:
                                if best is None or candidate < best:
                                    best = candidate
                            elif wrap is None or candidate < wrap:
                                wrap = candidate
                        warp_id = best if best is not None else wrap
                        warp = pool.pop(warp_id)
                        rr_next = warp_id + 1

                    step = warp.steps[warp.position]
                    kind = step[0]
                    deactivate = False

                    if kind == _FIXED_CONST:
                        # Hottest path: the whole issue is one add.
                        complete = cycle + step[3]
                        dsts = step[2]
                        if dsts:
                            scoreboard = warp.scoreboard
                            for dst in dsts:
                                scoreboard[dst] = complete
                            w_banks = step[4]
                            if w_banks is not None:
                                for bank in w_banks:
                                    banks[bank].reserve(
                                        complete, occupancy, now
                                    )
                    elif kind == _PREFETCH:
                        if cycle > now:
                            now = cycle
                        bw_banks = step[2]
                        if bw_banks is not None:
                            for bank in bw_banks:
                                banks[bank].reserve(cycle, occupancy, now)
                        br_banks = step[3]
                        if br_banks is None:
                            warp.next_ready = cycle + 1
                        else:
                            last = cycle
                            for bank in br_banks:
                                done = banks[bank].reserve(
                                    cycle, occupancy, now
                                ) + bank_latency
                                if done > last:
                                    last = done
                            warp.next_ready = last + step[4]
                        warp.position += 1
                        if warp.position >= warp.n:
                            fin = finishes[warp.warp_id]
                            if fin is not None:
                                if cycle > now:
                                    now = cycle
                                done = cycle
                                for bank in fin:
                                    settled = banks[bank].reserve(
                                        cycle, occupancy, now
                                    ) + access_latency
                                    if settled > done:
                                        done = settled
                                heappush(heap, (done, seq, wcb_drain, None))
                                seq += 1
                                pushed_drain += 1
                            active_count -= 1
                            remaining -= 1
                        else:
                            requeue.append(warp)
                        issues_left -= 1
                        if not issues_left:
                            break
                        continue
                    else:
                        if kind == _FIXED_LIVE:
                            if cycle > now:
                                now = cycle
                            ready = cycle + step[3]
                            for bank in step[4]:
                                done = banks[bank].reserve(
                                    cycle, occupancy, now
                                ) + access_latency
                                if done > ready:
                                    ready = done
                            excess = ready - cycle - operand_depth
                            start = cycle + excess if excess > 0 else cycle
                            complete = start + step[5]
                            dsts = step[2]
                            w_banks = step[6]
                        elif kind == _LONG_CONST:
                            start = cycle + step[3]
                            access = memory_access(step[4], start)
                            complete = access.ready_cycle
                            dsts = step[2]
                            if dsts:
                                deactivate = access.level != "l1"
                                if deactivate != step[5]:
                                    raise ReplayDivergence(
                                        "deactivation flag diverged"
                                    )
                            w_banks = step[6]
                        else:   # _LONG_LIVE
                            if cycle > now:
                                now = cycle
                            ready = cycle + step[3]
                            for bank in step[4]:
                                done = banks[bank].reserve(
                                    cycle, occupancy, now
                                ) + access_latency
                                if done > ready:
                                    ready = done
                            excess = ready - cycle - operand_depth
                            start = cycle + excess if excess > 0 else cycle
                            access = memory_access(step[5], start)
                            complete = access.ready_cycle
                            dsts = step[2]
                            if dsts:
                                deactivate = access.level != "l1"
                                if deactivate != step[6]:
                                    raise ReplayDivergence(
                                        "deactivation flag diverged"
                                    )
                            w_banks = step[7]
                        if dsts:
                            scoreboard = warp.scoreboard
                            for dst in dsts:
                                scoreboard[dst] = complete
                            if w_banks is not None:
                                for bank in w_banks:
                                    banks[bank].reserve(
                                        complete, occupancy, now
                                    )

                    warp.position += 1
                    if warp.position >= warp.n:
                        fin = finishes[warp.warp_id]
                        if fin is not None:
                            if cycle > now:
                                now = cycle
                            done = cycle
                            for bank in fin:
                                settled = banks[bank].reserve(
                                    cycle, occupancy, now
                                ) + access_latency
                                if settled > done:
                                    done = settled
                            heappush(heap, (done, seq, wcb_drain, None))
                            seq += 1
                            pushed_drain += 1
                        active_count -= 1
                        remaining -= 1
                    elif deactivate:
                        records = all_deacts[warp.warp_id]
                        index = warp.di
                        if index >= len(records):
                            raise ReplayDivergence(
                                "deactivation stream exhausted"
                            )
                        warp.di = index + 1
                        bw_banks = records[index]
                        if bw_banks is not None:
                            if cycle > now:
                                now = cycle
                            done = cycle
                            for bank in bw_banks:
                                settled = banks[bank].reserve(
                                    cycle, occupancy, now
                                ) + access_latency
                                if settled > done:
                                    done = settled
                            heappush(heap, (done, seq, wcb_drain, None))
                            seq += 1
                            pushed_drain += 1
                        warp.resume_at = complete
                        active_count -= 1
                        heappush(heap, (complete, seq,
                                        memory_response, warp))
                        seq += 1
                        pushed_memory += 1
                    else:
                        warp.next_ready = cycle + 1
                        requeue.append(warp)
                    issues_left -= 1
                    if not issues_left:
                        break
                cycle += 1
                if requeue:
                    for warp in requeue:
                        scoreboard = warp.scoreboard
                        deps = 0
                        if scoreboard:
                            get = scoreboard.get
                            for reg in warp.steps[warp.position][1]:
                                pending = get(reg, 0)
                                if pending > deps:
                                    deps = pending
                        next_ready = warp.next_ready
                        if next_ready >= deps:
                            if next_ready <= cycle:
                                pool[warp.warp_id] = warp
                            else:
                                heappush(heap, (next_ready, seq,
                                                prefetch_arrival, warp))
                                seq += 1
                                pushed_prefetch += 1
                        elif deps <= cycle:
                            pool[warp.warp_id] = warp
                        else:
                            heappush(heap, (deps, seq,
                                            scoreboard_release, warp))
                            seq += 1
                            pushed_scoreboard += 1
                    requeue.clear()
            else:
                # 3b. Nothing issuable: jump to the next pending event.
                if remaining == 0:
                    break
                if not heap:
                    raise RuntimeError(
                        "replay engine stalled: unfinished warps but no "
                        "pending events"
                    )
                next_cycle = heap[0][0]
                if next_cycle <= cycle:
                    next_cycle = cycle + 1
                skipped += next_cycle - cycle - 1
                cycle = next_cycle
            if cycle > MAX_CYCLES:
                raise RuntimeError("simulation exceeded MAX_CYCLES")
    finally:
        queue.fold_batched(
            seq, memory=pushed_memory, prefetch=pushed_prefetch,
            scoreboard=pushed_scoreboard, drain=pushed_drain,
        )
    return cycle, skipped


# -- engine entry point -------------------------------------------------------


def _adopt(sm, inner) -> None:
    """Point ``sm``'s inspectable components at the run that actually
    produced its result (post-run callers read ``sm.memory.stats`` &c.)."""
    sm.mrf = inner.mrf
    sm.rfc = inner.rfc
    sm.memory = inner.memory
    sm.policy = inner.policy
    sm.activations = inner.activations
    sm.deactivations = inner.deactivations
    sm.events = inner.events
    sm.cycles_skipped = inner.cycles_skipped


def _fallback(sm, kernel, seed, resident_warps, executable, outcome):
    """Run the point on a fresh event engine; tag the replay outcome."""
    from repro.arch.sm import StreamingMultiprocessor

    inner = StreamingMultiprocessor(
        sm.config, sm._policy_factory, engine="event"
    )
    result = inner.run(kernel, seed=seed, resident_warps=resident_warps,
                       executable=executable)
    _adopt(sm, inner)
    result.engine = "replay"
    result.replay_outcome = outcome
    return result


def run_replay(sm, kernel, seed: int = 0,
               resident_warps: Optional[int] = None,
               executable=None):
    """Simulate one point under the replay engine (see module docs).

    ``sm`` is the dispatching :class:`StreamingMultiprocessor`; its own
    components are replaced by whichever inner run produced the result,
    so post-run inspection behaves as for the other engines.
    """
    from repro.arch.sm import (
        SimulationResult,
        StreamingMultiprocessor,
        mrf_config_for,
    )

    config = sm.config
    policy_factory = sm._policy_factory
    if resident_warps is None:
        resident_warps = config.resident_warps_for(kernel.register_count)

    def resolved_executable():
        # A successful replay touches neither the policy nor the trace,
        # so kernel preparation (a compile-cache probe involving a full
        # content fingerprint) is resolved only on the paths that
        # actually run instructions.
        return (sm.policy.executable_kernel(kernel)
                if executable is None else executable)

    if not getattr(policy_factory, "latency_separable", False):
        return _fallback(sm, kernel, seed, resident_warps,
                         resolved_executable(), "fallback-static")

    key = (
        cached_kernel_fingerprint(kernel),
        policy_factory.name,
        seed,
        resident_warps,
        fingerprint_of_arch_sans_latency(config),
    )
    timeline = timeline_for(key)
    if timeline is None:
        inner, result, timeline = _record_timeline(
            StreamingMultiprocessor, config, policy_factory, kernel,
            seed, resident_warps, resolved_executable(),
        )
        store_timeline(key, timeline)
        _adopt(sm, inner)
        result.engine = "replay"
        result.replay_outcome = "recorded"
        return result

    if not timeline.replayable:
        # Dead row: either the recording's hook streams were outside
        # the replayable shapes (structural), or earlier points proved
        # the row's memory-hit pattern latency-sensitive (divergence).
        outcome = ("fallback-diverged" if timeline.divergences
                   else "fallback-static")
        return _fallback(sm, kernel, seed, resident_warps,
                         resolved_executable(), outcome)

    mrf_config = mrf_config_for(config, policy_factory)
    memory = MemoryHierarchy(config.memory)
    queue = EventQueue()
    started = time.perf_counter()
    try:
        cycles, skipped = _simulate_replay(
            timeline, config, mrf_config, memory, queue
        )
    except ReplayDivergence:
        # The recording's memory-hit pattern does not hold at this
        # latency; the point must re-run on the event engine either
        # way.  Recording costs ~2x a plain event run, so re-anchor
        # (re-record at this latency, so the sweep's next point
        # replays against the nearest recording) only when this
        # timeline has proven itself by serving replays; a timeline
        # that diverges before ever replaying marks the whole row as
        # latency-sensitive and the remaining points take the plain
        # event path.
        timeline.divergences += 1
        if timeline.replays_served:
            inner, result, fresh = _record_timeline(
                StreamingMultiprocessor, config, policy_factory, kernel,
                seed, resident_warps, resolved_executable(),
            )
            fresh.divergences = timeline.divergences
            store_timeline(key, fresh)
            _adopt(sm, inner)
            result.engine = "replay"
            result.replay_outcome = "fallback-diverged"
            return result
        timeline.replayable = False
        timeline.reason = "memory-hit pattern diverged at replay"
        return _fallback(sm, kernel, seed, resident_warps,
                         resolved_executable(), "fallback-diverged")
    host_seconds = time.perf_counter() - started
    timeline.replays_served += 1

    rfc = timeline.rfc_stats
    result = SimulationResult(
        kernel=kernel.name,
        policy=policy_factory.name,
        config=config,
        cycles=cycles,
        instructions=timeline.instructions,
        prefetch_operations=timeline.prefetch_operations,
        resident_warps=resident_warps,
        activations=timeline.activation_count,
        deactivations=timeline.deactivation_count,
        mrf_reads=timeline.mrf_reads,
        mrf_writes=timeline.mrf_writes,
        rfc_reads=rfc[0],
        rfc_writes=rfc[1],
        rfc_read_hits=rfc[2],
        rfc_read_misses=rfc[3],
        rfc_fills=rfc[4],
        rfc_writebacks=rfc[5],
        l1_hit_rate=memory.stats.l1_hit_rate,
        extra=dict(timeline.extra),
        engine="replay",
        replay_outcome="replayed",
        event_counts=dict(queue.counts),
        cycles_skipped=skipped,
        host_seconds=host_seconds,
    )
    # Post-run inspection parity: the structural counters land on the
    # (otherwise untouched) components the dispatching SM already owns.
    sm.memory = memory
    sm.events = queue
    sm.cycles_skipped = skipped
    sm.activations = timeline.activation_count
    sm.deactivations = timeline.deactivation_count
    sm.mrf.stats.reads = timeline.mrf_reads
    sm.mrf.stats.writes = timeline.mrf_writes
    stats = sm.rfc.stats
    (stats.reads, stats.writes, stats.read_hits, stats.read_misses,
     stats.fills, stats.writebacks) = rfc
    return result
