"""The streaming multiprocessor: the simulator's scheduling core.

A single-issue SM with a two-level warp scheduler (Section 3.2, after
Narasiman et al. and Gebhart et al.):

* up to ``config.active_warps`` warps are *active* and arbitrated
  round-robin; the remaining resident warps wait inactive;
* a warp that issues a global load that misses in the L1 is deactivated;
  its result returns to the main register file while it waits;
* when an active slot frees, the inactive warp whose blocking event
  resolved earliest is activated; the register policy may charge an
  activation latency (LTRF refetches the warp's register working set,
  overlapping the refetch with other warps' execution).

The register policy (:mod:`repro.policies`) decides where operands live
and what every access costs; the SM owns instruction issue, hazards,
scheduling, and the memory hierarchy.

Timing model: one issue slot per scheduler per cycle.  Three engines
implement it:

* the **event engine** (default) keeps a wake-up heap keyed by absolute
  cycle (:class:`repro.arch.events.EventQueue`).  Latency-producing
  components -- the memory hierarchy, the MRF's bulk prefetch port, the
  per-warp scoreboard, the WCB write-back drain -- return completion
  times, and the SM registers each as a typed event.  When no warp can
  issue, the clock jumps directly to the earliest pending event, so a
  fully-stalled phase (every warp parked on a 400-cycle memory
  response) costs a handful of heap operations instead of per-cycle
  Python work;
* the **dense engine** is the retained reference implementation: it
  walks the active pool every cycle, re-deriving readiness by polling
  every warp.  It is observationally identical to the event engine
  (pinned by ``tests/arch/test_engine_equivalence.py``) and exists as
  the oracle for that equivalence, not for speed;
* the **replay engine** (:mod:`repro.arch.replay`) is the sweep fast
  path: it runs the event engine once per (kernel, policy, arch minus
  latency knobs) to record a latency-parameterized dependency
  timeline, then replays that timeline per latency point with live
  bank calendars and a live memory hierarchy -- skipping the policy
  stack entirely.  Points the timeline cannot serve exactly (policies
  not declaring :attr:`~repro.policies.base.RegisterPolicy
  .latency_separable`, or runs whose memory-hit pattern diverges from
  the recording) fall back to the event engine transparently; the
  outcome is reported per result in ``replay_outcome``.

Select with ``StreamingMultiprocessor(..., engine=...)`` or the
``LTRF_SIM_ENGINE`` environment variable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.arch.config import GPUConfig
from repro.arch.events import EventKind, EventQueue
from repro.arch.main_register_file import MainRegisterFile
from repro.arch.memory import MemoryHierarchy
from repro.arch.rf_cache import RegisterFileCache
from repro.arch.warp import Warp, WarpState
from repro.compiler.cache import cached_trace_list
from repro.ir.instruction import Opcode
from repro.ir.kernel import Kernel

#: Safety valve: simulations beyond this many cycles indicate livelock.
MAX_CYCLES = 50_000_000

#: Engine registry; ``LTRF_SIM_ENGINE`` may name any at runtime.
ENGINES = ("event", "dense", "replay")


def mrf_config_for(config: GPUConfig, policy_factory) -> GPUConfig:
    """The configuration the MRF is built from under ``policy_factory``.

    Two policy traits transform the MRF's timing relative to the
    simulated architecture: the Ideal design point forces baseline
    latency regardless of the configured multiple, and LTRF narrows
    the MRF crossbar by 4x (Section 4.2) -- design choices of those
    architectures, so they travel with the policy rather than the
    configuration.  Shared with the replay engine, whose inlined bank
    calendars must see exactly the timing the recorded run's MRF saw.
    """
    mrf_config = config
    if getattr(policy_factory, "forces_baseline_latency", False):
        mrf_config = config.with_latency_multiple(1.0)
    if getattr(policy_factory, "uses_narrow_crossbar", False):
        mrf_config = mrf_config.scaled(narrow_crossbar=True)
    return mrf_config


def default_engine() -> str:
    """Engine used when the constructor receives none (env overridable)."""
    engine = os.environ.get("LTRF_SIM_ENGINE", "event")
    if engine not in ENGINES:
        raise ValueError(
            f"LTRF_SIM_ENGINE must be one of {ENGINES}, got {engine!r}"
        )
    return engine


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating one kernel on one SM.

    Fields marked ``compare=False`` are host-side telemetry: they
    describe how the simulation *ran* (which engine, how fast, how many
    wake-up events) rather than what it *computed*, so two runs of
    different engines compare equal when architecturally identical.
    """

    kernel: str
    policy: str
    config: GPUConfig
    cycles: int
    instructions: int
    prefetch_operations: int
    resident_warps: int
    activations: int
    deactivations: int
    mrf_reads: int
    mrf_writes: int
    rfc_reads: int
    rfc_writes: int
    rfc_read_hits: int
    rfc_read_misses: int
    rfc_fills: int
    rfc_writebacks: int
    l1_hit_rate: float
    extra: dict = field(default_factory=dict)
    #: Engine that produced this result (one of :data:`ENGINES`).
    engine: str = field(default="event", compare=False)
    #: How the replay engine served this point: ``recorded`` (this run
    #: recorded the row's timeline on the event engine), ``replayed``,
    #: ``fallback-static`` (policy not latency-separable or timeline
    #: not replayable), or ``fallback-diverged`` (live memory-hit
    #: pattern contradicted the recording).  Empty for other engines.
    replay_outcome: str = field(default="", compare=False)
    #: Wake-up events registered, by :class:`EventKind` (telemetry).
    event_counts: Dict[str, int] = field(default_factory=dict, compare=False)
    #: Idle cycles the event engine jumped over instead of ticking.
    cycles_skipped: int = field(default=0, compare=False)
    #: Host wall-clock seconds spent inside the scheduling core.
    host_seconds: float = field(default=0.0, compare=False)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def rfc_hit_rate(self) -> float:
        total = self.rfc_read_hits + self.rfc_read_misses
        return self.rfc_read_hits / total if total else 0.0

    @property
    def mrf_accesses(self) -> int:
        return self.mrf_reads + self.mrf_writes

    @property
    def rfc_accesses(self) -> int:
        return self.rfc_reads + self.rfc_writes

    @property
    def simulated_cycles_per_host_second(self) -> float:
        """Simulated-vs-host-time throughput (0 when unmeasured)."""
        if self.host_seconds <= 0.0:
            return 0.0
        return self.cycles / self.host_seconds


class StreamingMultiprocessor:
    """Drives warps through a kernel under a register policy."""

    def __init__(self, config: GPUConfig, policy_factory,
                 engine: Optional[str] = None) -> None:
        """``policy_factory(config, mrf, rfc)`` builds the register policy."""
        self.config = config
        self._policy_factory = policy_factory
        self.mrf = MainRegisterFile(mrf_config_for(config, policy_factory))
        self.rfc = RegisterFileCache(config)
        self.memory = MemoryHierarchy(config.memory)
        self.policy = policy_factory(config, self.mrf, self.rfc)
        self.activations = 0
        self.deactivations = 0
        if engine is None:
            engine = default_engine()
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected {ENGINES}")
        self.engine = engine
        #: Wake-up heap; recreated per run (see :meth:`_simulate`).
        self.events = EventQueue()
        self.cycles_skipped = 0
        self._operand_depth = config.operand_pipeline_depth

    # -- top level ----------------------------------------------------------

    def run(self, kernel: Kernel, seed: int = 0,
            resident_warps: Optional[int] = None,
            executable: Optional[Kernel] = None) -> SimulationResult:
        """Simulate ``kernel`` to completion and return the result.

        ``resident_warps`` defaults to what the register file capacity
        admits for this kernel's register demand (the TLP model).
        Policies that require compiled kernels receive the kernel via
        their factory; the SM only sees the executable trace.

        ``executable`` lets a caller that already holds the policy's
        prepared form of ``kernel`` (e.g. :class:`repro.arch.gpu.GPU`,
        which shares one compiled artifact across all its SMs) skip the
        per-run preparation; it must be exactly what
        ``policy.executable_kernel(kernel)`` would return.
        """
        if self.engine == "replay":
            from repro.arch.replay import run_replay

            return run_replay(self, kernel, seed=seed,
                              resident_warps=resident_warps,
                              executable=executable)
        if executable is None:
            executable = self.policy.executable_kernel(kernel)
        if resident_warps is None:
            resident_warps = self.config.resident_warps_for(
                kernel.register_count
            )
        self.policy.prepare(resident_warps)
        warps = [
            Warp(w, cached_trace_list(executable, w, seed))
            for w in range(resident_warps)
        ]
        started = time.perf_counter()
        cycles = self._simulate(warps)
        host_seconds = time.perf_counter() - started
        instructions = sum(w.instructions_issued for w in warps)
        prefetches = sum(w.prefetches_issued for w in warps)
        return SimulationResult(
            kernel=kernel.name,
            policy=self.policy.name,
            config=self.config,
            cycles=cycles,
            instructions=instructions,
            prefetch_operations=prefetches,
            resident_warps=resident_warps,
            activations=self.activations,
            deactivations=self.deactivations,
            mrf_reads=self.mrf.stats.reads,
            mrf_writes=self.mrf.stats.writes,
            rfc_reads=self.rfc.stats.reads,
            rfc_writes=self.rfc.stats.writes,
            rfc_read_hits=self.rfc.stats.read_hits,
            rfc_read_misses=self.rfc.stats.read_misses,
            rfc_fills=self.rfc.stats.fills,
            rfc_writebacks=self.rfc.stats.writebacks,
            l1_hit_rate=self.memory.stats.l1_hit_rate,
            extra=self.policy.extra_stats(),
            engine=self.engine,
            event_counts=dict(self.events.counts),
            cycles_skipped=self.cycles_skipped,
            host_seconds=host_seconds,
        )

    # -- scheduling core ----------------------------------------------------

    def _simulate(self, warps: List[Warp]) -> int:
        """Run ``warps`` to completion under the selected engine."""
        self.events = EventQueue()
        self.cycles_skipped = 0
        if self.engine == "event":
            return self._simulate_event(warps)
        return self._simulate_dense(warps)

    # -- event engine -------------------------------------------------------

    def _simulate_event(self, warps: List[Warp]) -> int:
        """Event-driven scheduling: wake-up heap plus cycle skipping.

        Invariant: every unfinished warp is in exactly one place --
        the issue pool (ready now), the wake-up heap (a future typed
        completion will ready it), or the resumable heap (woken by its
        memory response, waiting for a free active slot).  Warp
        readiness only changes when the warp itself issues, activates,
        or deactivates, so each transition re-registers the warp in the
        right place and nothing is ever polled.
        """
        queue = self.events
        heap = queue._heap
        policy = self.policy
        active_slots = self.config.active_warps
        issue_width = self.config.issue_width
        operand_depth = self._operand_depth

        # The issue path below is the manually inlined equivalent of
        # :meth:`_issue` (which the dense reference engine still calls):
        # at a few million issues per simulation, the method dispatch
        # and repeated ``self`` lookups are measurable.  Event pushes
        # are likewise inlined as raw heappush calls against a local
        # sequence counter and per-kind tallies (folded back into the
        # queue's counters on exit), and the per-warp hazard probe in
        # the requeue loop is the open-coded body of
        # :meth:`Warp.dependencies_ready_at`.  The engine equivalence
        # suite pins all of these code paths to each other.
        memory_response = EventKind.MEMORY_RESPONSE
        prefetch_arrival = EventKind.PREFETCH_ARRIVAL
        scoreboard_release = EventKind.SCOREBOARD_RELEASE
        wcb_drain = EventKind.WCB_DRAIN
        state_inactive = WarpState.INACTIVE
        state_finished = WarpState.FINISHED
        opcode_prefetch = Opcode.PREFETCH
        policy_activate = policy.activate
        policy_prefetch = policy.prefetch
        policy_operand = policy.operand_read_latency
        policy_result = policy.result_write
        policy_deactivate = policy.deactivate
        policy_finish = policy.finish
        memory_access = self.memory.access

        seq = queue._seq
        pushed_memory = pushed_prefetch = pushed_scoreboard = 0
        pushed_drain = 0
        active_count = 0
        #: warp_id -> warp, for warps issuable at the current cycle.
        pool: Dict[int, Warp] = {}
        #: (resume_at, warp_id, warp): woken, awaiting an active slot.
        resumable = [(0, warp.warp_id, warp) for warp in warps]
        remaining = len(warps)
        requeue: List[Warp] = []
        cycle = 0
        rr_next = 0
        skipped = 0

        try:
            while True:
                # 1. Drain due completions from the wake-up heap.
                while heap and heap[0][0] <= cycle:
                    _, _, kind, payload = heappop(heap)
                    if payload is None:
                        continue         # instrumentation-only (WCB drain)
                    if kind == memory_response:
                        heappush(
                            resumable,
                            (payload.resume_at, payload.warp_id, payload),
                        )
                    else:
                        pool[payload.warp_id] = payload

                # 2. Fill free active slots, earliest-resolved warp first.
                while resumable and active_count < active_slots:
                    _, _, warp = heappop(resumable)
                    latency = policy_activate(warp, cycle)
                    warp.state = WarpState.ACTIVE
                    next_ready = warp.next_ready = cycle + latency
                    active_count += 1
                    self.activations += 1
                    deps = warp.dependencies_ready_at()
                    if next_ready >= deps:
                        if next_ready <= cycle:
                            pool[warp.warp_id] = warp
                        else:
                            heappush(heap, (next_ready, seq,
                                            prefetch_arrival, warp))
                            seq += 1
                            pushed_prefetch += 1
                    elif deps <= cycle:
                        pool[warp.warp_id] = warp
                    else:
                        heappush(heap, (deps, seq, scoreboard_release, warp))
                        seq += 1
                        pushed_scoreboard += 1

                if pool:
                    # 3a. Up to issue_width schedulers each issue from a
                    # distinct warp this cycle, round-robin for fairness.
                    issues_left = issue_width
                    while pool:
                        if len(pool) == 1:
                            # One candidate: round-robin is a no-op.
                            warp_id, warp = pool.popitem()
                            rr_next = warp_id + 1
                        else:
                            # Open-coded _round_robin_pool (the pool is
                            # at most the active-warp count, so a plain
                            # scan beats anything clever).
                            best = wrap = None
                            for candidate in pool:
                                if candidate >= rr_next:
                                    if best is None or candidate < best:
                                        best = candidate
                                elif wrap is None or candidate < wrap:
                                    wrap = candidate
                            warp_id = best if best is not None else wrap
                            warp = pool.pop(warp_id)
                            rr_next = warp_id + 1

                        entry = warp.trace[warp.position]
                        instruction = entry.instruction

                        if instruction.opcode is opcode_prefetch:
                            warp.next_ready = policy_prefetch(
                                warp, instruction, cycle
                            )
                            warp.prefetches_issued += 1
                            warp.position += 1
                            if warp.position >= warp.trace_len:
                                drain = policy_finish(warp, cycle)
                                if drain is not None:
                                    heappush(heap, (drain, seq,
                                                    wcb_drain, None))
                                    seq += 1
                                    pushed_drain += 1
                                warp.state = state_finished
                                active_count -= 1
                                remaining -= 1
                            else:
                                requeue.append(warp)
                            issues_left -= 1
                            if not issues_left:
                                break
                            continue

                        operand_latency = policy_operand(
                            warp, instruction, cycle
                        )
                        # Fixed operand-collection stages absorb the
                        # baseline read latency; only the excess extends
                        # the dependency chain.
                        excess = operand_latency - operand_depth
                        start = cycle + excess if excess > 0 else cycle
                        deactivate = False

                        dsts = instruction.dsts
                        if instruction.is_long_latency:
                            access = memory_access(entry.address, start)
                            complete = access.ready_cycle
                            # Loads that miss the L1 deactivate the warp
                            # (two-level scheduler); stores are
                            # fire-and-forget.
                            if dsts and access.level != "l1":
                                deactivate = True
                        else:
                            # Fixed-latency ops, incl. shared-memory LD/ST
                            # (scratchpad: outside the L1/LLC hierarchy,
                            # never deactivates -- see _issue).
                            complete = start + instruction.execution_latency
                        if dsts:
                            scoreboard = warp.scoreboard
                            for dst in dsts:
                                scoreboard[dst] = complete
                            # Destination-less ops (stores, branches,
                            # EXIT) write nothing anywhere; every
                            # policy's result_write is a no-op for
                            # them, so skip the call entirely.
                            policy_result(warp, instruction, complete,
                                          deactivate)
                        warp.instructions_issued += 1
                        warp.position += 1

                        if warp.position >= warp.trace_len:
                            drain = policy_finish(warp, cycle)
                            if drain is not None:
                                heappush(heap, (drain, seq, wcb_drain, None))
                                seq += 1
                                pushed_drain += 1
                            warp.state = state_finished
                            active_count -= 1
                            remaining -= 1
                        elif deactivate:
                            drain = policy_deactivate(warp, cycle)
                            if drain is not None:
                                heappush(heap, (drain, seq, wcb_drain, None))
                                seq += 1
                                pushed_drain += 1
                            warp.state = state_inactive
                            warp.resume_at = complete
                            active_count -= 1
                            self.deactivations += 1
                            heappush(heap, (complete, seq,
                                            memory_response, warp))
                            seq += 1
                            pushed_memory += 1
                        else:
                            warp.next_ready = cycle + 1
                            requeue.append(warp)
                        issues_left -= 1
                        if not issues_left:
                            break
                    cycle += 1
                    if requeue:
                        for warp in requeue:
                            # Open-coded Warp.dependencies_ready_at
                            # (the warp is mid-trace by construction).
                            scoreboard = warp.scoreboard
                            deps = 0
                            if scoreboard:
                                get = scoreboard.get
                                for reg in warp.trace[
                                    warp.position
                                ].instruction.hazard_registers:
                                    pending = get(reg, 0)
                                    if pending > deps:
                                        deps = pending
                            next_ready = warp.next_ready
                            if next_ready >= deps:
                                if next_ready <= cycle:
                                    pool[warp.warp_id] = warp
                                else:
                                    heappush(heap, (next_ready, seq,
                                                    prefetch_arrival, warp))
                                    seq += 1
                                    pushed_prefetch += 1
                            elif deps <= cycle:
                                pool[warp.warp_id] = warp
                            else:
                                heappush(heap, (deps, seq,
                                                scoreboard_release, warp))
                                seq += 1
                                pushed_scoreboard += 1
                        requeue.clear()
                else:
                    # 3b. Nothing issuable: jump to the next pending event.
                    if remaining == 0:
                        break
                    if not heap:
                        raise RuntimeError(
                            "event engine stalled: unfinished warps but no "
                            "pending events"
                        )
                    next_cycle = heap[0][0]
                    if next_cycle <= cycle:
                        next_cycle = cycle + 1
                    skipped += next_cycle - cycle - 1
                    cycle = next_cycle
                if cycle > MAX_CYCLES:
                    raise RuntimeError("simulation exceeded MAX_CYCLES")
        finally:
            queue.fold_batched(
                seq, memory=pushed_memory, prefetch=pushed_prefetch,
                scoreboard=pushed_scoreboard, drain=pushed_drain,
            )
        self.cycles_skipped = skipped
        return cycle

    @staticmethod
    def _round_robin_pool(pool: Dict[int, Warp], rr_next: int) -> Warp:
        """Round-robin over the issue pool, keyed by warp id."""
        best = None
        wrap = None
        for warp_id in pool:
            if warp_id >= rr_next:
                if best is None or warp_id < best:
                    best = warp_id
            elif wrap is None or warp_id < wrap:
                wrap = warp_id
        return pool[best if best is not None else wrap]

    # -- dense reference engine ---------------------------------------------

    def _simulate_dense(self, warps: List[Warp]) -> int:
        """Reference implementation: poll every warp, every cycle.

        Retained verbatim as the oracle the event engine is tested
        against; prefer the event engine everywhere else.
        """
        active: List[Warp] = []
        inactive: List[Warp] = list(warps)
        cycle = 0
        rr_next = 0

        issue_width = self.config.issue_width
        while True:
            # Fill free active slots with resumable inactive warps.
            self._activate_ready(active, inactive, cycle)

            issuable = [
                w for w in active
                if w.earliest_issue() <= cycle
            ]
            if issuable:
                # Up to issue_width schedulers each issue from a
                # distinct warp this cycle, round-robin for fairness.
                for _ in range(min(issue_width, len(issuable))):
                    if not issuable:
                        break
                    warp = self._round_robin(issuable, rr_next)
                    rr_next = warp.warp_id + 1
                    issuable.remove(warp)
                    self._issue(warp, cycle, active, inactive)
                cycle += 1
            else:
                if not active and not inactive:
                    break
                next_cycle = self._next_event(active, inactive, cycle)
                if next_cycle is None:
                    break
                cycle = next_cycle
            if cycle > MAX_CYCLES:
                raise RuntimeError("simulation exceeded MAX_CYCLES")
        return cycle

    def _activate_ready(self, active: List[Warp],
                        inactive: List[Warp], cycle: int) -> None:
        while len(active) < self.config.active_warps:
            candidates = [w for w in inactive if w.resume_at <= cycle]
            if not candidates:
                return
            warp = min(candidates, key=lambda w: (w.resume_at, w.warp_id))
            inactive.remove(warp)
            latency = self.policy.activate(warp, cycle)
            warp.state = WarpState.ACTIVE
            warp.next_ready = cycle + latency
            active.append(warp)
            self.activations += 1

    @staticmethod
    def _round_robin(issuable: List[Warp], rr_next: int) -> Warp:
        following = [w for w in issuable if w.warp_id >= rr_next]
        pool = following or issuable
        return min(pool, key=lambda w: w.warp_id)

    def _next_event(self, active: List[Warp],
                    inactive: List[Warp], cycle: int) -> Optional[int]:
        events = [w.earliest_issue() for w in active]
        if len(active) < self.config.active_warps:
            events.extend(w.resume_at for w in inactive)
        if not events:
            return None
        return max(cycle + 1, min(events))

    # -- instruction issue --------------------------------------------------

    def _issue(self, warp: Warp, cycle: int,
               active: List[Warp], inactive: List[Warp]) -> None:
        entry = warp.trace[warp.position]
        instruction = entry.instruction

        if instruction.opcode is Opcode.PREFETCH:
            completion = self.policy.prefetch(warp, instruction, cycle)
            warp.next_ready = completion
            warp.prefetches_issued += 1
            warp.advance()
            self._retire_if_done(warp, cycle, active)
            return

        operand_latency = self.policy.operand_read_latency(
            warp, instruction, cycle
        )
        # Fixed operand-collection stages absorb the baseline read
        # latency; only the excess extends the dependency chain.
        excess = operand_latency - self._operand_depth
        start = cycle + excess if excess > 0 else cycle
        deactivate = False

        if instruction.is_long_latency:
            access = self.memory.access(entry.address, start)
            complete = access.ready_cycle
            # Loads that miss the L1 deactivate the warp (two-level
            # scheduler); stores are fire-and-forget.
            if instruction.dsts and not access.is_l1_hit:
                deactivate = True
        else:
            # Everything else -- including shared-memory LD/ST -- has a
            # fixed latency.  Shared memory is an on-chip scratchpad, not
            # part of the L1/LLC hierarchy, so those ops neither touch
            # ``self.memory`` nor count toward ``l1_hit_rate``, and they
            # never deactivate a warp (tests/arch/test_sm.py pins this).
            complete = start + instruction.execution_latency
        scoreboard = warp.scoreboard
        for dst in instruction.dsts:
            scoreboard[dst] = complete
        self.policy.result_write(
            warp, instruction, complete, to_mrf=deactivate
        )
        warp.instructions_issued += 1
        warp.advance()

        if self._retire_if_done(warp, cycle, active):
            return
        if deactivate:
            drain = self.policy.deactivate(warp, cycle)
            if drain is not None:
                self.events.push(drain, EventKind.WCB_DRAIN)
            warp.state = WarpState.INACTIVE
            warp.resume_at = complete
            active.remove(warp)
            inactive.append(warp)
            self.deactivations += 1
        else:
            warp.next_ready = cycle + 1

    def _retire_if_done(self, warp: Warp, cycle: int,
                        active: List[Warp]) -> bool:
        if warp.position < warp.trace_len:
            return False
        drain = self.policy.finish(warp, cycle)
        if drain is not None:
            self.events.push(drain, EventKind.WCB_DRAIN)
        warp.state = WarpState.FINISHED
        if warp in active:
            active.remove(warp)
        return True
