"""PREFETCH insertion and code-size accounting.

Given a region partition (register-intervals or strands), this pass
inserts one ``PREFETCH`` pseudo-instruction at the top of every region
header block.  The PREFETCH carries a 256-bit register bit-vector naming
the region's working set (Section 3.2); the hardware loads those
registers into the warp's register-file-cache partition before the warp
executes the region.

A loop that fits inside one region re-enters its header on every
iteration and therefore re-executes the static PREFETCH; the hardware
skips registers whose WCB valid bits are already set, so re-execution
costs one issue slot and no register movement (the policies implement
this).

Code-size accounting follows Section 4.3: the bit-vector itself is
``MAX_ARCH_REGS / 8`` bytes per PREFETCH; carrying it either piggybacks
on an embedded marker bit in every instruction (paper: +7% code size) or
uses an explicit prefetch instruction word (+9%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instruction import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.registers import MAX_ARCH_REGS, encode_bitvector
from repro.compiler.regions import RegionPartition

#: Bytes per ordinary instruction word in our cost model (PTX-like ISA).
INSTRUCTION_BYTES = 8

#: Bytes per PREFETCH bit-vector (256 architectural registers).
BITVECTOR_BYTES = MAX_ARCH_REGS // 8


@dataclass(frozen=True)
class CodeSizeReport:
    """Static code-size accounting for one compiled kernel."""

    base_instructions: int
    prefetch_operations: int

    @property
    def base_bytes(self) -> int:
        return self.base_instructions * INSTRUCTION_BYTES

    @property
    def embedded_bit_bytes(self) -> int:
        """Scheme 1: an extra marker bit per instruction + bit-vectors.

        The marker bit steals encoding space rather than widening words,
        so its byte cost is zero; only the bit-vectors add bytes.
        """
        return self.base_bytes + self.prefetch_operations * BITVECTOR_BYTES

    @property
    def explicit_instruction_bytes(self) -> int:
        """Scheme 2: an explicit PREFETCH instruction + bit-vectors."""
        return (
            self.base_bytes
            + self.prefetch_operations * (INSTRUCTION_BYTES + BITVECTOR_BYTES)
        )

    @property
    def embedded_bit_overhead(self) -> float:
        """Fractional growth under the embedded-bit scheme."""
        if self.base_bytes == 0:
            return 0.0
        return self.embedded_bit_bytes / self.base_bytes - 1.0

    @property
    def explicit_instruction_overhead(self) -> float:
        """Fractional growth under the explicit-instruction scheme."""
        if self.base_bytes == 0:
            return 0.0
        return self.explicit_instruction_bytes / self.base_bytes - 1.0


def insert_prefetches(kernel: Kernel, partition: RegionPartition) -> CodeSizeReport:
    """Insert a PREFETCH at each region header; return code-size report.

    Mutates the kernel in place.  Idempotence is guarded: a header whose
    first instruction is already a PREFETCH is rejected.
    """
    base_instructions = kernel.static_instruction_count
    for region in partition.regions:
        block = kernel.cfg.block(region.header)
        if block.instructions and block.instructions[0].opcode is Opcode.PREFETCH:
            raise ValueError(
                f"{region.header}: PREFETCH already inserted"
            )
        prefetch = Instruction(
            Opcode.PREFETCH,
            prefetch_vector=encode_bitvector(region.registers),
        )
        block.instructions.insert(0, prefetch)
    return CodeSizeReport(
        base_instructions=base_instructions,
        prefetch_operations=len(partition.regions),
    )
