"""Tests for versioned architecture serialization and fingerprints."""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    ArchSerializationError,
    GPUConfig,
    MemoryConfig,
    arch_fingerprint,
    arch_from_dict,
    arch_to_dict,
    dumps_arch,
    fingerprint_of_arch,
    load_arch,
    loads_arch,
    save_arch,
)
from repro.arch.serialize import SCHEMA_NAME, SCHEMA_VERSION

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def custom_config():
    return GPUConfig(
        mrf_size_kb=2048,
        mrf_banks=32,
        mrf_latency_multiple=5.3,
        narrow_crossbar=True,
        active_warps=4,
        memory=MemoryConfig(dram_latency=1200, l1_latency=40),
    )


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        config = custom_config()
        payload = arch_to_dict(config)
        rebuilt = arch_from_dict(payload)
        assert rebuilt == config
        assert arch_to_dict(rebuilt) == payload

    def test_default_config_serialises_to_bare_envelope(self):
        payload = arch_to_dict(GPUConfig())
        assert payload == {
            "schema": SCHEMA_NAME, "schema_version": SCHEMA_VERSION,
        }
        assert arch_from_dict(payload) == GPUConfig()

    def test_text_round_trip(self):
        config = custom_config()
        assert loads_arch(dumps_arch(config)) == config

    def test_file_round_trip(self, tmp_path):
        config = custom_config()
        path = str(tmp_path / "big.arch.json")
        save_arch(config, path)
        assert load_arch(path) == config

    def test_memory_omitted_when_default(self):
        payload = arch_to_dict(GPUConfig(mrf_banks=8))
        assert "memory" not in payload

    def test_memory_default_stripped_when_present(self):
        config = GPUConfig(memory=MemoryConfig(dram_latency=1200))
        payload = arch_to_dict(config)
        assert payload["memory"] == {"dram_latency": 1200}
        assert arch_from_dict(payload) == config


class TestRoundTripProperties:
    @given(
        banks=st.sampled_from([1, 4, 8, 16, 32]),
        size=st.integers(min_value=64, max_value=4096),
        latency=st.sampled_from([1.0, 1.25, 2.8, 5.3, 6.3]),
        warps=st.integers(min_value=1, max_value=8),
        narrow=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_configs_round_trip(self, banks, size, latency, warps,
                                       narrow):
        config = GPUConfig(
            mrf_banks=banks, mrf_size_kb=size,
            mrf_latency_multiple=latency, active_warps=warps,
            narrow_crossbar=narrow,
        )
        payload = arch_to_dict(config)
        rebuilt = arch_from_dict(payload)
        assert rebuilt == config
        assert arch_fingerprint(rebuilt) == arch_fingerprint(config)

    @given(latency=st.sampled_from([1.0, 1.6, 5.3]),
           size=st.integers(min_value=64, max_value=4096))
    @settings(max_examples=25, deadline=None)
    def test_fingerprint_is_stable_across_rebuilds(self, latency, size):
        first = GPUConfig(mrf_latency_multiple=latency, mrf_size_kb=size)
        second = GPUConfig(mrf_latency_multiple=latency, mrf_size_kb=size)
        assert arch_fingerprint(first) == arch_fingerprint(second)

    @given(size=st.integers(min_value=64, max_value=4096))
    @settings(max_examples=25, deadline=None)
    def test_fingerprint_distinguishes_content(self, size):
        base = GPUConfig(mrf_size_kb=size)
        changed = GPUConfig(mrf_size_kb=size + 1)
        assert arch_fingerprint(base) != arch_fingerprint(changed)


class TestFingerprint:
    def test_excludes_schema_envelope(self):
        """Bumping the schema version must not invalidate result caches."""
        config = custom_config()
        payload = arch_to_dict(config)
        content = dict(payload)
        del content["schema"], content["schema_version"]
        blob = json.dumps(content, sort_keys=True, separators=(",", ":"))
        expected = hashlib.sha256(blob.encode()).hexdigest()[:16]
        assert arch_fingerprint(config) == expected

    def test_integral_float_canonicalised(self):
        """mrf_latency_multiple 2 and 2.0 are the same architecture."""
        as_int = arch_from_dict({
            "schema": SCHEMA_NAME, "schema_version": SCHEMA_VERSION,
            "mrf_latency_multiple": 2,
        })
        as_float = GPUConfig(mrf_latency_multiple=2.0)
        assert as_int == as_float
        assert arch_fingerprint(as_int) == arch_fingerprint(as_float)

    def test_memoised_variant_agrees(self):
        config = custom_config()
        assert fingerprint_of_arch(config) == arch_fingerprint(config)
        # Second call serves the memo; must still agree.
        assert fingerprint_of_arch(config) == arch_fingerprint(config)

    def test_every_field_is_load_bearing(self):
        base = arch_fingerprint(GPUConfig())
        assert arch_fingerprint(GPUConfig(mrf_banks=8)) != base
        assert arch_fingerprint(GPUConfig(rfc_banks=8)) != base
        assert arch_fingerprint(GPUConfig(narrow_crossbar=True)) != base
        assert arch_fingerprint(
            GPUConfig(memory=MemoryConfig(dram_latency=901))
        ) != base


class TestSchemaChecks:
    def envelope(self, **fields):
        payload = {"schema": SCHEMA_NAME, "schema_version": SCHEMA_VERSION}
        payload.update(fields)
        return payload

    def test_rejects_wrong_schema(self):
        with pytest.raises(ArchSerializationError, match="schema"):
            arch_from_dict({"schema": "ltrf-kernel", "schema_version": 1})

    def test_rejects_unsupported_version(self):
        with pytest.raises(ArchSerializationError, match="version"):
            arch_from_dict({"schema": SCHEMA_NAME, "schema_version": 999})

    def test_rejects_missing_version(self):
        with pytest.raises(ArchSerializationError, match="version"):
            arch_from_dict({"schema": SCHEMA_NAME})

    def test_rejects_non_dict_payload(self):
        with pytest.raises(ArchSerializationError, match="dict"):
            arch_from_dict(["not", "a", "dict"])

    def test_rejects_misspelled_field(self):
        """Unknown keys fail loudly: a misspelled 'mrf_banks' would
        otherwise silently simulate the default bank count."""
        with pytest.raises(ArchSerializationError, match="mrf_bank"):
            arch_from_dict(self.envelope(mrf_bank=8))

    def test_rejects_misspelled_memory_field(self):
        with pytest.raises(ArchSerializationError, match="dram_latencies"):
            arch_from_dict(self.envelope(memory={"dram_latencies": 900}))

    def test_rejects_non_dict_memory(self):
        with pytest.raises(ArchSerializationError, match="memory"):
            arch_from_dict(self.envelope(memory=[900]))

    def test_rejects_bool_for_int_field(self):
        with pytest.raises(ArchSerializationError, match="mrf_banks"):
            arch_from_dict(self.envelope(mrf_banks=True))

    def test_rejects_int_for_bool_field(self):
        with pytest.raises(ArchSerializationError, match="narrow_crossbar"):
            arch_from_dict(self.envelope(narrow_crossbar=1))

    def test_rejects_string_for_number(self):
        with pytest.raises(ArchSerializationError, match="mrf_size_kb"):
            arch_from_dict(self.envelope(mrf_size_kb="256"))

    def test_rejects_non_string_name(self):
        with pytest.raises(ArchSerializationError, match="name"):
            arch_from_dict(self.envelope(name=7))

    def test_wraps_dataclass_validation(self):
        with pytest.raises(ArchSerializationError, match="mrf_banks"):
            arch_from_dict(self.envelope(mrf_banks=0))
        with pytest.raises(ArchSerializationError, match="memory"):
            arch_from_dict(self.envelope(memory={"dram_latency": 0}))

    def test_rejects_invalid_json_text(self):
        with pytest.raises(ArchSerializationError, match="JSON"):
            loads_arch("{not json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArchSerializationError, match="cannot read"):
            load_arch(str(tmp_path / "absent.arch.json"))


class TestPinnedFixture:
    """A committed .arch.json must keep loading under the current schema.

    If SCHEMA_VERSION is ever bumped incompatibly, this test forces the
    author to either keep a version-1 loader or migrate the fixture --
    i.e. architecture files in the wild cannot be silently orphaned.
    """

    PATH = os.path.join(FIXTURES, "maxwell-like.arch.json")
    FINGERPRINT = "0f4e2aeb0eb3a176"

    def test_loads_and_validates(self):
        config = load_arch(self.PATH)
        assert config.mrf_size_kb == 272
        assert config.mrf_latency_multiple == 1.0

    def test_fingerprint_pinned(self):
        """The committed bytes hash to the committed fingerprint.

        Guards both fingerprint stability (algorithm changes show up
        here) and accidental fixture edits -- either would silently
        orphan every result-store entry keyed on this architecture.
        """
        assert arch_fingerprint(load_arch(self.PATH)) == self.FINGERPRINT

    def test_fixture_matches_live_registry(self):
        """The registry still builds the committed content."""
        from repro.arch.registry import default_arch_registry
        registry = default_arch_registry()
        assert registry.fingerprint("maxwell-like") == self.FINGERPRINT
        assert registry.get_config("maxwell-like") == load_arch(self.PATH)
