"""Service smoke check: the HTTP sweep service against the real CLI.

Run with:  PYTHONPATH=src python scripts/service_smoke.py

End-to-end rehearsal of `repro serve`, used by CI and runnable
locally:

1. start the service as a real subprocess on a free port over a fresh
   store, with a scaled-down ``.arch.json`` so the grid is smoke-fast;
2. submit a sweep over HTTP (``POST /sweeps``), poll ``GET
   /jobs/<id>`` to completion, and fetch the rendered table;
3. stop the service with SIGTERM and require a clean exit (the
   graceful-drain path);
4. run the *equivalent* ``repro sweep`` CLI command over the same
   store and require its table to be **byte-identical** to the
   service's -- serving must add an interface, not a second rendering
   -- and its engine line to report zero simulations (the CLI resolved
   every point from the store the service populated).

Exits non-zero, with a diff, on any mismatch.
"""

import difflib
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

WORKLOAD = "btree"
POLICIES = ["BL", "LTRF"]


def env():
    merged = dict(os.environ)
    merged["PYTHONPATH"] = SRC + os.pathsep + merged.get("PYTHONPATH", "")
    return merged


def write_small_arch(path):
    sys.path.insert(0, SRC)
    from repro.arch.registry import arch_config
    from repro.arch.serialize import save_arch

    save_arch(
        arch_config("maxwell-like", max_resident_warps=8, active_warps=4),
        path,
    )


def http(method, url, payload=None, timeout=120.0):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read().decode()


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    tmp = tempfile.mkdtemp(prefix="service_smoke_")
    store = os.path.join(tmp, "store")
    arch_path = os.path.join(tmp, "small.arch.json")
    write_small_arch(arch_path)

    print("== starting repro serve ==")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--dir", store, "--job-workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env(), text=True,
    )
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://[0-9.]+:\d+", banner)
        if not match:
            fail(f"no serving banner, got: {banner!r}")
        url = match.group(0)
        print(f"   {banner.strip()}")

        print("== submitting sweep over HTTP ==")
        spec = {"workloads": WORKLOAD, "policies": POLICIES,
                "archs": [arch_path], "label": "service smoke"}
        submitted = json.loads(http("POST", f"{url}/sweeps", spec))
        job_id = submitted["id"]

        deadline = time.monotonic() + 300.0
        while True:
            snapshot = json.loads(http("GET", f"{url}/jobs/{job_id}"))
            if snapshot["state"] not in ("queued", "running"):
                break
            if time.monotonic() > deadline:
                fail(f"job did not finish: {snapshot['progress']}")
            time.sleep(0.2)
        if snapshot["state"] != "done":
            fail(f"job ended {snapshot['state']}: "
                 f"{snapshot.get('error', '')}")
        progress = snapshot["progress"]
        print(f"   {job_id}: {progress}")
        if progress["executed"] != progress["unique"]:
            fail("a fresh store must execute every unique point, got "
                 f"{progress}")

        service_table = http("GET", f"{url}/jobs/{job_id}/table")
        results = json.loads(http("GET", f"{url}/results"))
        if results["count"] != progress["unique"]:
            fail(f"GET /results saw {results['count']} records, "
                 f"expected {progress['unique']}")
        report = http("GET", f"{url}/report/{job_id}")
        if "<html" not in report.lower():
            fail("GET /report did not return HTML")
    finally:
        print("== stopping the service (SIGTERM) ==")
        server.send_signal(signal.SIGTERM)
        try:
            _, err = server.communicate(timeout=60.0)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("service did not exit on SIGTERM")
    if server.returncode != 0:
        fail(f"service exited {server.returncode}: {err}")

    print("== running the equivalent CLI sweep over the same store ==")
    cli_env = env()
    cli_env["LTRF_CACHE_DIR"] = store
    sweep = subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", WORKLOAD,
         "--policies", ",".join(POLICIES), "--arch", arch_path],
        capture_output=True, env=cli_env, text=True,
    )
    if sweep.returncode != 0:
        fail(f"CLI sweep exited {sweep.returncode}: {sweep.stderr}")
    lines = sweep.stdout.splitlines()
    engine_lines = [line for line in lines if line.startswith("[engine]")]
    cli_table = "\n".join(
        line for line in lines if not line.startswith("[engine]")
    )
    if "simulated 0 run(s)" not in (engine_lines or [""])[0]:
        fail("the CLI sweep re-simulated points the service already "
             f"stored: {engine_lines}")

    if cli_table != service_table:
        diff = "\n".join(difflib.unified_diff(
            service_table.splitlines(), cli_table.splitlines(),
            "service table", "cli table", lineterm="",
        ))
        fail(f"service and CLI tables differ:\n{diff}")
    print("   tables are byte-identical; CLI simulated nothing")
    print("OK: service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
