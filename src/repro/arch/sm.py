"""The streaming multiprocessor: the simulator's main loop.

A single-issue SM with a two-level warp scheduler (Section 3.2, after
Narasiman et al. and Gebhart et al.):

* up to ``config.active_warps`` warps are *active* and arbitrated
  round-robin; the remaining resident warps wait inactive;
* a warp that issues a global load that misses in the L1 is deactivated;
  its result returns to the main register file while it waits;
* when an active slot frees, the inactive warp whose blocking event
  resolved earliest is activated; the register policy may charge an
  activation latency (LTRF refetches the warp's register working set,
  overlapping the refetch with other warps' execution).

The register policy (:mod:`repro.policies`) decides where operands live
and what every access costs; the SM owns instruction issue, hazards,
scheduling, and the memory hierarchy.

Timing model: one issue slot per cycle.  When no warp can issue, the
clock jumps to the next event, so fully-stalled phases cost the right
number of cycles without per-cycle Python overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.arch.config import GPUConfig
from repro.arch.main_register_file import MainRegisterFile
from repro.arch.memory import MemoryHierarchy
from repro.arch.rf_cache import RegisterFileCache
from repro.arch.warp import Warp, WarpState
from repro.ir.instruction import Opcode
from repro.ir.kernel import Kernel

#: Safety valve: simulations beyond this many cycles indicate livelock.
MAX_CYCLES = 50_000_000


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating one kernel on one SM."""

    kernel: str
    policy: str
    config: GPUConfig
    cycles: int
    instructions: int
    prefetch_operations: int
    resident_warps: int
    activations: int
    deactivations: int
    mrf_reads: int
    mrf_writes: int
    rfc_reads: int
    rfc_writes: int
    rfc_read_hits: int
    rfc_read_misses: int
    rfc_fills: int
    rfc_writebacks: int
    l1_hit_rate: float
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def rfc_hit_rate(self) -> float:
        total = self.rfc_read_hits + self.rfc_read_misses
        return self.rfc_read_hits / total if total else 0.0

    @property
    def mrf_accesses(self) -> int:
        return self.mrf_reads + self.mrf_writes

    @property
    def rfc_accesses(self) -> int:
        return self.rfc_reads + self.rfc_writes


class StreamingMultiprocessor:
    """Drives warps through a kernel under a register policy."""

    def __init__(self, config: GPUConfig, policy_factory) -> None:
        """``policy_factory(config, mrf, rfc)`` builds the register policy."""
        self.config = config
        mrf_config = config
        if getattr(policy_factory, "forces_baseline_latency", False):
            mrf_config = config.with_latency_multiple(1.0)
        if getattr(policy_factory, "uses_narrow_crossbar", False):
            # LTRF narrows the MRF crossbar by 4x (Section 4.2): a
            # design choice of the prefetching architecture, so it
            # travels with the policy rather than the configuration.
            mrf_config = mrf_config.scaled(narrow_crossbar=True)
        self.mrf = MainRegisterFile(mrf_config)
        self.rfc = RegisterFileCache(config)
        self.memory = MemoryHierarchy(config.memory)
        self.policy = policy_factory(config, self.mrf, self.rfc)
        self.activations = 0
        self.deactivations = 0

    # -- top level ----------------------------------------------------------

    def run(self, kernel: Kernel, seed: int = 0,
            resident_warps: Optional[int] = None) -> SimulationResult:
        """Simulate ``kernel`` to completion and return the result.

        ``resident_warps`` defaults to what the register file capacity
        admits for this kernel's register demand (the TLP model).
        Policies that require compiled kernels receive the kernel via
        their factory; the SM only sees the executable trace.
        """
        executable = self.policy.executable_kernel(kernel)
        if resident_warps is None:
            resident_warps = self.config.resident_warps_for(
                kernel.register_count
            )
        self.policy.prepare(resident_warps)
        warps = [
            Warp(w, executable.trace_list(warp_id=w, seed=seed))
            for w in range(resident_warps)
        ]
        cycles = self._simulate(warps)
        instructions = sum(w.instructions_issued for w in warps)
        prefetches = sum(w.prefetches_issued for w in warps)
        return SimulationResult(
            kernel=kernel.name,
            policy=self.policy.name,
            config=self.config,
            cycles=cycles,
            instructions=instructions,
            prefetch_operations=prefetches,
            resident_warps=resident_warps,
            activations=self.activations,
            deactivations=self.deactivations,
            mrf_reads=self.mrf.stats.reads,
            mrf_writes=self.mrf.stats.writes,
            rfc_reads=self.rfc.stats.reads,
            rfc_writes=self.rfc.stats.writes,
            rfc_read_hits=self.rfc.stats.read_hits,
            rfc_read_misses=self.rfc.stats.read_misses,
            rfc_fills=self.rfc.stats.fills,
            rfc_writebacks=self.rfc.stats.writebacks,
            l1_hit_rate=self.memory.stats.l1_hit_rate,
            extra=self.policy.extra_stats(),
        )

    # -- scheduling core -------------------------------------------------------

    def _simulate(self, warps: List[Warp]) -> int:
        active: List[Warp] = []
        inactive: List[Warp] = list(warps)
        cycle = 0
        rr_next = 0

        issue_width = self.config.issue_width
        while True:
            # Fill free active slots with resumable inactive warps.
            self._activate_ready(active, inactive, cycle)

            issuable = [
                w for w in active
                if w.earliest_issue() <= cycle
            ]
            if issuable:
                # Up to issue_width schedulers each issue from a
                # distinct warp this cycle, round-robin for fairness.
                for _ in range(min(issue_width, len(issuable))):
                    if not issuable:
                        break
                    warp = self._round_robin(issuable, rr_next)
                    rr_next = warp.warp_id + 1
                    issuable.remove(warp)
                    self._issue(warp, cycle, active, inactive)
                cycle += 1
            else:
                if not active and not inactive:
                    break
                next_cycle = self._next_event(active, inactive, cycle)
                if next_cycle is None:
                    break
                cycle = next_cycle
            if cycle > MAX_CYCLES:
                raise RuntimeError("simulation exceeded MAX_CYCLES")
        return cycle

    def _activate_ready(self, active: List[Warp],
                        inactive: List[Warp], cycle: int) -> None:
        while len(active) < self.config.active_warps:
            candidates = [w for w in inactive if w.resume_at <= cycle]
            if not candidates:
                return
            warp = min(candidates, key=lambda w: (w.resume_at, w.warp_id))
            inactive.remove(warp)
            latency = self.policy.activate(warp, cycle)
            warp.state = WarpState.ACTIVE
            warp.next_ready = cycle + latency
            active.append(warp)
            self.activations += 1

    @staticmethod
    def _round_robin(issuable: List[Warp], rr_next: int) -> Warp:
        following = [w for w in issuable if w.warp_id >= rr_next]
        pool = following or issuable
        return min(pool, key=lambda w: w.warp_id)

    def _next_event(self, active: List[Warp],
                    inactive: List[Warp], cycle: int) -> Optional[int]:
        events = [w.earliest_issue() for w in active]
        if len(active) < self.config.active_warps:
            events.extend(w.resume_at for w in inactive)
        if not events:
            return None
        return max(cycle + 1, min(events))

    # -- instruction issue --------------------------------------------------------

    def _issue(self, warp: Warp, cycle: int,
               active: List[Warp], inactive: List[Warp]) -> None:
        entry = warp.current
        instruction = entry.instruction

        if instruction.opcode is Opcode.PREFETCH:
            completion = self.policy.prefetch(warp, instruction, cycle)
            warp.next_ready = completion
            warp.prefetches_issued += 1
            warp.advance()
            self._retire_if_done(warp, cycle, active)
            return

        operand_latency = self.policy.operand_read_latency(
            warp, instruction, cycle
        )
        # Fixed operand-collection stages absorb the baseline read
        # latency; only the excess extends the dependency chain.
        start = cycle + max(
            0, operand_latency - self.config.operand_pipeline_depth
        )
        deactivate = False

        if instruction.is_long_latency:
            access = self.memory.access(entry.address, start)
            complete = access.ready_cycle
            # Loads that miss the L1 deactivate the warp (two-level
            # scheduler); stores are fire-and-forget.
            if instruction.dsts and not access.is_l1_hit:
                deactivate = True
        else:
            # Everything else -- including shared-memory LD/ST -- has a
            # fixed latency.  Shared memory is an on-chip scratchpad, not
            # part of the L1/LLC hierarchy, so those ops neither touch
            # ``self.memory`` nor count toward ``l1_hit_rate``, and they
            # never deactivate a warp (tests/arch/test_sm.py pins this).
            complete = start + instruction.execution_latency

        for dst in instruction.dsts:
            warp.note_write(dst, complete)
        self.policy.result_write(
            warp, instruction, complete, to_mrf=deactivate
        )
        warp.instructions_issued += 1
        warp.advance()

        if self._retire_if_done(warp, cycle, active):
            return
        if deactivate:
            self.policy.deactivate(warp, cycle)
            warp.state = WarpState.INACTIVE
            warp.resume_at = complete
            active.remove(warp)
            inactive.append(warp)
            self.deactivations += 1
        else:
            warp.next_ready = cycle + 1

    def _retire_if_done(self, warp: Warp, cycle: int,
                        active: List[Warp]) -> bool:
        if not warp.done:
            return False
        self.policy.finish(warp, cycle)
        warp.state = WarpState.FINISHED
        if warp in active:
            active.remove(warp)
        return True
