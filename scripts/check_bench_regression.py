"""Perf-regression gate: compare a pytest-benchmark JSON to the baseline.

Usage:
    python scripts/check_bench_regression.py CURRENT.json [BASELINE.json]
    python scripts/check_bench_regression.py CURRENT.json --update

Exits non-zero if the median of any benchmark regresses more than the
threshold (default 25%, override with ``--threshold`` or the
``LTRF_BENCH_THRESHOLD`` environment variable, e.g. ``0.25``) against
the committed baseline.  Benchmarks present only in the current run are
reported as new (not failures); benchmarks that disappeared fail the
gate so the baseline never silently rots.

``--update`` rewrites the baseline from the current run (keeping only
the fields the gate compares, so the committed file stays small and
machine-noise like timestamps never churns the diff).  Re-baselining is
a deliberate act: do it when a PR intentionally changes performance,
and say so in the PR description.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_baseline.json",
)


def load_medians(path: str) -> dict:
    """``{benchmark fullname: median seconds}`` from a benchmark JSON."""
    with open(path) as handle:
        payload = json.load(handle)
    medians = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench["name"]
        medians[name] = bench["stats"]["median"]
    return medians


def write_baseline(path: str, current_path: str) -> None:
    with open(current_path) as handle:
        payload = json.load(handle)
    slim = {
        "machine_info": {
            key: payload.get("machine_info", {}).get(key)
            for key in ("node", "processor", "cpu", "python_version")
        },
        "benchmarks": [
            {
                "fullname": bench.get("fullname") or bench["name"],
                "stats": {"median": bench["stats"]["median"]},
            }
            for bench in payload.get("benchmarks", [])
        ],
    }
    with open(path, "w") as handle:
        json.dump(slim, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline updated: {path} ({len(slim['benchmarks'])} benchmarks)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark JSON from this run")
    parser.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("LTRF_BENCH_THRESHOLD", "0.25")),
        help="allowed median regression fraction (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current run instead of gating",
    )
    args = parser.parse_args(argv)

    if args.update:
        write_baseline(args.baseline, args.current)
        return 0

    if not os.path.exists(args.baseline):
        print(f"ERROR: no baseline at {args.baseline}; generate one with "
              f"--update and commit it", file=sys.stderr)
        return 2

    current = load_medians(args.current)
    baseline = load_medians(args.baseline)

    failures = []
    lines = []
    for name in sorted(baseline):
        if name not in current:
            failures.append(f"{name}: present in baseline but not run")
            continue
        base = baseline[name]
        now = current[name]
        ratio = now / base if base else float("inf")
        # The +50ms absolute slack keeps sub-millisecond benchmarks
        # (static tables) from tripping the relative gate on timer
        # noise; any benchmark long enough to measure is gated by the
        # relative threshold alone.
        allowed = base * (1.0 + args.threshold) + 0.05
        flag = ""
        if now > allowed:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: median {now:.4f}s vs baseline {base:.4f}s "
                f"({ratio:.2f}x > {1.0 + args.threshold:.2f}x allowed)"
            )
        lines.append(f"  {name}: {base:.4f}s -> {now:.4f}s "
                     f"({ratio:.2f}x){flag}")
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"  {name}: NEW ({current[name]:.4f}s), not gated")

    print(f"perf gate: threshold +{args.threshold:.0%}, "
          f"{len(baseline)} baselined benchmark(s)")
    print("\n".join(lines))
    if failures:
        print("\nFAIL: median regression(s) beyond threshold:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf this slowdown is intentional, re-baseline with:\n"
              "  python scripts/check_bench_regression.py CURRENT.json "
              "--update\nand commit BENCH_baseline.json.", file=sys.stderr)
        return 1
    print("OK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
