"""Tests for the memory hierarchy model."""

from repro.arch import MemoryConfig, MemoryHierarchy


def hierarchy(**overrides):
    return MemoryHierarchy(MemoryConfig(**overrides))


class TestL1Behaviour:
    def test_first_access_misses(self):
        mem = hierarchy()
        result = mem.access(0, 0)
        assert not result.is_l1_hit
        assert mem.stats.l1_misses == 1

    def test_second_access_hits(self):
        mem = hierarchy()
        mem.access(0, 0)
        result = mem.access(0, 100)
        assert result.is_l1_hit
        assert result.ready_cycle == 100 + mem.config.l1_latency

    def test_same_line_hits(self):
        mem = hierarchy()
        mem.access(0, 0)
        assert mem.access(64, 100).is_l1_hit     # same 128B line

    def test_streaming_misses_every_line(self):
        mem = hierarchy()
        results = [mem.access(a, 0) for a in range(0, 1 << 20, 128)]
        assert not any(r.is_l1_hit for r in results)

    def test_small_footprint_loops_hit(self):
        mem = hierarchy()
        footprint = 8 * 1024
        for address in range(0, footprint, 128):
            mem.access(address, 0)
        second_pass = [
            mem.access(address, 0) for address in range(0, footprint, 128)
        ]
        assert all(r.is_l1_hit for r in second_pass)

    def test_lru_eviction_within_set(self):
        # Map ways+1 lines to one set: they must evict each other.
        mem = hierarchy()
        sets = mem.l1.sets
        line = mem.config.line_bytes
        ways = mem.config.l1_ways
        addresses = [i * sets * line for i in range(ways + 1)]
        for address in addresses:
            mem.access(address, 0)
        assert not mem.access(addresses[0], 0).is_l1_hit


class TestHierarchyLatency:
    def test_llc_hit_faster_than_dram(self):
        mem = hierarchy()
        first = mem.access(0, 0)                     # DRAM
        mem_l1_evict = [                             # push line out of L1 only
            mem.access(a, 0)
            for a in range(1 << 14, (1 << 14) + mem.config.l1_size_bytes * 2, 128)
        ]
        second = mem.access(0, 1000)                 # should hit LLC
        assert second.level == "llc"
        assert second.ready_cycle - 1000 < first.ready_cycle - 0

    def test_dram_latency_applied(self):
        mem = hierarchy()
        result = mem.access(0, 0)
        assert result.level == "dram"
        assert result.ready_cycle >= mem.config.dram_latency

    def test_dram_bandwidth_queueing(self):
        mem = hierarchy()
        # Two simultaneous DRAM requests: the second is delayed by the
        # service interval.
        a = mem.access(0, 0)
        b = mem.access(1 << 19, 0)
        assert b.ready_cycle == a.ready_cycle + mem.config.dram_service_interval

    def test_hit_rate_statistic(self):
        mem = hierarchy()
        mem.access(0, 0)
        mem.access(0, 1)
        mem.access(0, 2)
        assert abs(mem.stats.l1_hit_rate - 2 / 3) < 1e-9
