"""Warp Control Block (paper Figure 7) and its storage accounting.

One WCB per warp holds the metadata the LTRF hardware needs:

* the **register cache address table**: architectural register id ->
  RFC bank slot (4-bit bank number in the paper; a dict here);
* the **working-set bit-vector**: which registers the current prefetch
  subgraph may touch, with a valid bit per register ("has it already
  been prefetched?");
* the **liveness bit-vector** (LTRF+): which registers currently hold
  live values, updated by writes (live) and dead-operand bits (dead).

``wcb_storage_bits`` reproduces the Section 4.3 storage-cost estimate:
``warps x (regs x 5 + 3 + regs + regs)`` bits -- 114,880 bits for 64
warps with 256 registers, about 5% of a 256KB register file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.ir.registers import MAX_ARCH_REGS


@dataclass
class WarpControlBlock:
    """Per-warp LTRF metadata."""

    warp_id: int
    #: Architectural register -> RFC bank slot.
    address_table: Dict[int, int] = field(default_factory=dict)
    #: Registers named by the current region's PREFETCH bit-vector.
    working_set: Set[int] = field(default_factory=set)
    #: Registers present (valid) in the RFC right now.
    valid: Set[int] = field(default_factory=set)
    #: Registers whose RFC copy is newer than the MRF copy.
    dirty: Set[int] = field(default_factory=set)
    #: LTRF+ liveness bit-vector; starts all-dead (Section 3.2).
    live: Set[int] = field(default_factory=set)
    #: Warp-offset address inside the RFC banks (None when inactive).
    warp_offset: Optional[int] = None
    #: Write-back drains completed (deactivation/retirement flushes).
    drains: int = 0
    #: Completion cycle of the most recent drain (None before the
    #: first).  The drain does not gate anything in the modelled
    #: microarchitecture -- the MRF's banked calendar already serialises
    #: it against later accesses -- so the SM records it as an
    #: instrumentation-only WCB_DRAIN event.
    last_drain_complete: Optional[int] = None

    def note_drain(self, complete_cycle: int) -> None:
        """Record a write-back drain completing at ``complete_cycle``."""
        self.drains += 1
        self.last_drain_complete = complete_cycle

    def reset_partition(self) -> None:
        """Drop all cache-resident state (warp lost its RFC partition)."""
        self.address_table.clear()
        self.valid.clear()
        self.dirty.clear()
        self.warp_offset = None

    def note_write(self, register: int) -> None:
        """A write makes a register live (LTRF+ bit-vector update)."""
        self.live.add(register)

    def note_dead_operands(self, dead_registers) -> None:
        """Dead-operand bits mark registers dead after their last read."""
        self.live.difference_update(dead_registers)

    def cached(self, register: int) -> bool:
        return register in self.valid


def wcb_storage_bits(
    warps: int = 64, registers: int = MAX_ARCH_REGS, active_warps: int = 8
) -> int:
    """Total WCB storage per SM, following Section 4.3.

    Per warp: ``registers`` address-table entries of
    ``ceil(log2(rfc_banks)) + 1``-ish bits -- the paper uses 5 bits (4-bit
    bank number + valid), one 3-bit warp-offset (``log2(active_warps)``),
    and two ``registers``-bit vectors (working set, liveness).
    """
    offset_bits = max(1, (active_warps - 1).bit_length())
    per_warp = registers * 5 + offset_bits + registers + registers
    return warps * per_warp
