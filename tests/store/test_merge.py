"""Tests for merging harvested stores (the ssh-backend homecoming
path, also `repro store merge`)."""

from repro.store import MergeOutcome, ResultStore, merge_store


def test_merge_brings_new_records_and_archs(tmp_path):
    source = ResultStore(str(tmp_path / "remote"))
    source.put("a", {"v": 1})
    source.put("b", {"v": 2})
    source.record_arch("f1", {"max_resident_warps": 8})
    dest = ResultStore(str(tmp_path / "home"))
    dest.put("a", {"v": 1})                  # already identical

    outcome = merge_store(dest, source)
    assert outcome == MergeOutcome(scanned=2, merged=1, identical=1,
                                   archs=1)
    assert dest.get("b") == {"v": 2}
    assert dest.arch_payload("f1") == {"max_resident_warps": 8}
    assert "1 of 2 record(s)" in outcome.render()
    source.close()
    dest.close()


def test_merge_is_idempotent(tmp_path):
    source = ResultStore(str(tmp_path / "remote"))
    source.put("a", {"v": 1})
    dest = ResultStore(str(tmp_path / "home"))
    merge_store(dest, source)
    again = merge_store(dest, source)
    assert again.merged == 0 and again.identical == 1
    # No duplicate entries piled up; verify stays green.
    assert dest.verify().ok
    source.close()
    dest.close()


def test_merge_survives_torn_source_tail(tmp_path):
    """A worker killed mid-append leaves a torn tail in its harvested
    store; the merge replays only complete records."""
    source = ResultStore(str(tmp_path / "remote"), shards=1)
    source.put("a", {"v": 1})
    segment = source._states[source.shard_of("a")].writer_path
    with open(segment, "ab") as handle:
        handle.write(b'{"k": "torn", "r": {"v')
    source.close()

    reopened = ResultStore(str(tmp_path / "remote"), create=False)
    dest = ResultStore(str(tmp_path / "home"))
    outcome = merge_store(dest, reopened)
    assert outcome.scanned == 1
    assert dest.get("a") == {"v": 1}
    assert dest.get("torn") is None
    assert dest.verify().ok
    reopened.close()
    dest.close()
