"""The banked main register file (MRF).

Models the two properties the paper's evaluation hinges on:

* **Access latency**: bank access time scaled by the configuration's
  ``mrf_latency_multiple`` (Table 2), plus crossbar traversal.
* **Bank occupancy**: the baseline HP-SRAM file is pipelined, but the
  slow high-density technologies are not (the paper extracts timing
  with CACTI's non-pipelined bank models), so occupancy grows toward
  the full access latency as the latency multiple grows
  (:attr:`repro.arch.config.GPUConfig.mrf_bank_occupancy`).  Slow banks
  therefore throttle aggregate operand bandwidth -- this is why BL's
  IPC collapses on 6.3x-latency register files even when individual
  access latencies could be overlapped.

Each bank keeps a *busy-interval calendar* rather than a single
next-free cursor, because accesses arrive out of time order (a load's
result write is scheduled hundreds of cycles in the future when the
load issues).  A future reservation must not block earlier accesses
that fit in the gap before it.

Registers interleave across banks by ``(warp_id + register) % banks``,
the standard GPU layout that spreads one warp's operands over banks.
Access counts feed the energy model (:mod:`repro.power.energy`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List

from repro.arch.config import GPUConfig


@dataclass
class MRFStats:
    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class BankCalendar:
    """Busy intervals of one bank, supporting out-of-order reservation.

    Stored as parallel ``starts``/``ends`` integer arrays (sorted by
    start, non-overlapping) rather than a list of pairs, so the bisect
    probes compare machine integers instead of allocating throwaway
    lists -- the calendar sits on the operand-collection hot path.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def reserve(self, cycle: int, duration: int, floor: int = 0) -> int:
        """Reserve ``duration`` busy cycles at the earliest time >= ``cycle``.

        Returns the start cycle of the reservation.  Adjacent intervals
        are merged to keep the calendar compact.  Reservations at or
        past the calendar's end -- the common case, since most accesses
        happen near the current cycle -- take the append fast path.

        ``floor`` is a guarantee from the caller that no later
        reservation will ask for a cycle below it; intervals ending at
        or before the floor are dead history and are dropped in batches
        so the calendar only ever holds the in-flight future window.
        """
        starts = self._starts
        ends = self._ends
        if not starts:
            starts.append(cycle)
            ends.append(cycle + duration)
            return cycle
        last_end = ends[-1]
        if cycle >= last_end:
            if cycle == last_end:
                ends[-1] = cycle + duration
            else:
                starts.append(cycle)
                ends.append(cycle + duration)
            return cycle
        # Dead-history pruning is only checked on this (conflicting)
        # path: a calendar that only ever appends stays compact by
        # merging, while one long enough to accumulate dead history is
        # guaranteed to route current-cycle accesses here (its tail
        # holds future result-write reservations past the SM clock).
        if len(ends) > 64 and ends[64] <= floor:
            # ends is sorted (intervals are disjoint), so one bisect
            # finds the whole dead prefix.
            dead = bisect_right(ends, floor)
            del starts[:dead]
            del ends[:dead]
        index = bisect_right(starts, cycle) - 1
        start = cycle
        if index >= 0 and ends[index] > start:
            start = ends[index]
        probe = index + 1
        count = len(starts)
        while probe < count and starts[probe] < start + duration:
            if ends[probe] > start:
                start = ends[probe]
            probe += 1
        # The scan above establishes the gap: every interval before
        # ``probe`` ends at or before ``start`` and the interval at
        # ``probe`` (if any) starts at or after ``end``, so the
        # insertion point is ``probe`` -- no second search needed.  A
        # conflict-displaced reservation starts exactly at its
        # predecessor's end (that is what displaced it), so the
        # overwhelmingly common outcome is an in-place extension of a
        # neighbour, not a list insertion (profiled: ~3/4 of all
        # reservations took the general insert path before this).
        end = start + duration
        pred = probe - 1
        if pred >= 0 and ends[pred] == start:
            if probe < count and starts[probe] == end:
                # Bridges the gap exactly: fuse both neighbours.
                ends[pred] = ends[probe]
                del starts[probe]
                del ends[probe]
            else:
                ends[pred] = end
        elif probe < count and starts[probe] == end:
            starts[probe] = start
        else:
            starts.insert(probe, start)
            ends.insert(probe, end)
        return start


class MainRegisterFile:
    """Bank-conflict-aware MRF timing model."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self._banks: List[BankCalendar] = [
            BankCalendar() for _ in range(config.mrf_banks)
        ]
        self.stats = MRFStats()
        # The config is frozen, so its derived timing properties are
        # constants for this MRF's lifetime; snapshot them once rather
        # than re-deriving (round/max arithmetic) on every access.
        self._num_banks = config.mrf_banks
        self._occupancy = config.mrf_bank_occupancy
        self._bank_latency = config.mrf_bank_latency
        self._transfer_latency = config.mrf_transfer_latency
        self._access_latency = self._bank_latency + self._transfer_latency
        self._crossbar_regs = config.crossbar_regs_per_cycle
        # Low-water mark for calendar pruning: the SM clock observed at
        # the most recent current-cycle access.  Reads and bulk
        # transfers happen *at* the SM's cycle and the SM clock is
        # monotonic, so no future reservation -- including result
        # writes, which land strictly later -- can start below it.
        self._now = 0

    def bank_of(self, warp_id: int, register: int) -> int:
        return (warp_id + register) % self._num_banks

    def read(self, warp_id: int, register: int, cycle: int) -> int:
        """Read one warp-register; returns the cycle the value arrives."""
        self.stats.reads += 1
        now = self._now
        if cycle > now:
            self._now = now = cycle
        # Bank occupancy + access latency + crossbar traversal, with
        # the wrapper layers flattened: single reads sit on the operand
        # hot path and the call overhead was measurable.
        return self._banks[(warp_id + register) % self._num_banks].reserve(
            cycle, self._occupancy, now
        ) + self._access_latency

    def read_group(self, warp_id: int, registers, cycle: int) -> int:
        """Read several warp-registers in parallel (operand collection).

        Timing- and stats-identical to one :meth:`read` per register;
        returns the cycle the *last* value arrives.  Exists because the
        per-instruction operand gather is the hottest call in the whole
        simulator and the per-register wrappers dominate it.
        """
        now = self._now
        if cycle > now:
            self._now = now = cycle
        if len(registers) == 1:
            # Single-source instructions dominate several workloads;
            # skip the group loop's setup for them.
            self.stats.reads += 1
            return self._banks[
                (warp_id + registers[0]) % self._num_banks
            ].reserve(cycle, self._occupancy, now) + self._access_latency
        banks = self._banks
        num_banks = self._num_banks
        occupancy = self._occupancy
        latency = self._access_latency
        ready = cycle
        count = 0
        for register in registers:
            count += 1
            done = banks[(warp_id + register) % num_banks].reserve(
                cycle, occupancy, now
            ) + latency
            if done > ready:
                ready = done
        self.stats.reads += count
        return ready

    def write(self, warp_id: int, register: int, cycle: int) -> int:
        """Write one warp-register; returns the cycle the bank settles."""
        self.stats.writes += 1
        return self._banks[(warp_id + register) % self._num_banks].reserve(
            cycle, self._occupancy, self._now
        ) + self._access_latency

    def bulk_read(self, warp_id: int, registers, cycle: int) -> int:
        """Read a register group (PREFETCH); returns completion cycle.

        Banks serve their shares subject to prior reservations (the
        crossbar traversal is paid once for the whole streamed group,
        not per register); the crossbar then streams registers out at
        ``crossbar_regs_per_cycle``.  The completion cycle is when the
        last register lands in the RFC.
        """
        registers = list(registers)
        if not registers:
            return cycle
        now = self._now
        if cycle > now:
            self._now = now = cycle
        banks = self._banks
        num_banks = self._num_banks
        occupancy = self._occupancy
        bank_latency = self._bank_latency
        last_bank_done = cycle
        for register in registers:
            done = banks[(warp_id + register) % num_banks].reserve(
                cycle, occupancy, now
            ) + bank_latency
            if done > last_bank_done:
                last_bank_done = done
        self.stats.reads += len(registers)
        transfer = self._transfer_latency + -(
            -len(registers) // self._crossbar_regs
        )
        return last_bank_done + transfer

    def bulk_write(self, warp_id: int, registers, cycle: int) -> int:
        """Write a register group (write-back); returns completion cycle."""
        registers = list(registers)
        if not registers:
            return cycle
        if cycle > self._now:
            self._now = cycle
        now = self._now
        banks = self._banks
        num_banks = self._num_banks
        occupancy = self._occupancy
        latency = self._access_latency
        done = cycle
        for register in registers:
            settled = banks[(warp_id + register) % num_banks].reserve(
                cycle, occupancy, now
            ) + latency
            if settled > done:
                done = settled
        self.stats.writes += len(registers)
        return done
