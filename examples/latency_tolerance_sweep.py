"""How much register file latency can each design tolerate?

Sweeps the main register file latency multiple at constant capacity and
reports each design's *maximum tolerable latency* (largest multiple
within 5% IPC loss) -- the paper's Figure 11/14 metric.

Run with:  python examples/latency_tolerance_sweep.py
"""

from repro.experiments import (
    LATENCY_GRID,
    Runner,
    max_tolerable_latency,
    normalized_sweep,
)

WORKLOADS = ("backprop", "btree")
POLICIES = ("BL", "RFC", "SHRF", "LTRF-strand", "LTRF", "LTRF+")


def main():
    runner = Runner()
    grid_text = "  ".join(f"{m:.0f}x" for m in LATENCY_GRID)
    for workload in WORKLOADS:
        print(f"\n=== {workload}: normalised IPC over latency {grid_text} ===")
        for policy in POLICIES:
            sweep = normalized_sweep(runner, policy, workload)
            tolerable = max_tolerable_latency(sweep)
            curve = "  ".join(f"{v:.2f}" for v in sweep)
            print(f"  {policy:12s} {curve}   -> tolerates {tolerable:.1f}x")
    print(
        "\nExpected ordering (paper Figs 11/14): BL < RFC ~ SHRF < "
        "LTRF-strand < LTRF < LTRF+."
    )


if __name__ == "__main__":
    main()
