"""Wake-up event infrastructure for the event-driven SM core.

The streaming multiprocessor schedules forward progress through one
wake-up heap keyed by *absolute cycle*.  Latency-producing components
never poll a per-cycle ``tick()``; they return completion times, and the
SM registers each completion as a typed event:

* ``MEMORY_RESPONSE`` -- an L1-miss load completes and its warp becomes
  resumable (:meth:`repro.arch.memory.MemoryHierarchy.access`);
* ``PREFETCH_ARRIVAL`` -- a PREFETCH (or activation refetch) bulk
  transfer lands in the RFC
  (:meth:`repro.arch.main_register_file.MainRegisterFile.bulk_read`);
* ``SCOREBOARD_RELEASE`` -- a warp's pending register writes settle and
  its next instruction becomes hazard-free
  (:meth:`repro.arch.warp.Warp.dependencies_ready_at`);
* ``WCB_DRAIN`` -- a deactivating/retiring warp's dirty registers finish
  writing back to the MRF (instrumentation only: nothing in the modelled
  microarchitecture waits on the drain, so the event wakes no warp).

When no warp can issue, the SM pops the heap and jumps the clock
directly to the earliest pending event instead of ticking idle cycles.

Determinism: events are totally ordered by ``(cycle, sequence)`` where
``sequence`` is the push order, so same-cycle events pop FIFO and a
simulation replays identically run to run.  The engine additionally
never *depends* on pop order for same-cycle warp wake-ups: woken warps
are re-ordered by the scheduler's own keys (``(resume_at, warp_id)`` for
activation, round-robin ``warp_id`` for issue), which is what makes the
event engine observationally identical to the reference dense-tick
engine (see ``tests/arch/test_engine_equivalence.py``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple


class EventKind:
    """Event taxonomy: which component's completion wakes the SM."""

    MEMORY_RESPONSE = "memory_response"
    PREFETCH_ARRIVAL = "prefetch_arrival"
    SCOREBOARD_RELEASE = "scoreboard_release"
    WCB_DRAIN = "wcb_drain"

    ALL = (MEMORY_RESPONSE, PREFETCH_ARRIVAL, SCOREBOARD_RELEASE, WCB_DRAIN)


class EventQueue:
    """Wake-up heap keyed by absolute cycle, with per-kind counters.

    Entries are ``(cycle, seq, kind, payload)``; ``seq`` increases
    monotonically with each push, so the heap's total order is
    deterministic and same-cycle events drain in push (FIFO) order.
    """

    __slots__ = ("_heap", "_seq", "counts")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str, object]] = []
        self._seq = 0
        #: Events pushed, by kind (the per-component event counters).
        self.counts: Dict[str, int] = dict.fromkeys(EventKind.ALL, 0)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, cycle: int, kind: str, payload: object = None) -> None:
        """Register a completion at absolute ``cycle``."""
        self.counts[kind] += 1
        heappush(self._heap, (cycle, self._seq, kind, payload))
        self._seq += 1

    def fold_batched(self, seq: int, memory: int = 0, prefetch: int = 0,
                     scoreboard: int = 0, drain: int = 0) -> None:
        """Fold an engine's locally batched push accounting back in.

        The event and replay engines inline their heap pushes against a
        local sequence counter and per-kind tallies (the per-push
        method dispatch is measurable at millions of events); on exit
        they hand the batch back here so telemetry (:attr:`counts`) and
        any later pushes observe the same state as unbatched
        :meth:`push` calls would have produced.
        """
        self._seq = seq
        counts = self.counts
        counts[EventKind.MEMORY_RESPONSE] += memory
        counts[EventKind.PREFETCH_ARRIVAL] += prefetch
        counts[EventKind.SCOREBOARD_RELEASE] += scoreboard
        counts[EventKind.WCB_DRAIN] += drain

    def peek_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, cycle: int) -> List[Tuple[int, str, object]]:
        """Pop every event with ``event.cycle <= cycle``, FIFO per cycle."""
        due: List[Tuple[int, str, object]] = []
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            entry = heappop(heap)
            due.append((entry[0], entry[2], entry[3]))
        return due
