"""Tests for the sharded append-only result store."""

import json
import os

import pytest

from repro.store import ResultStore, StoreError, legacy_entry_name
from repro.store.result_store import FORMAT_FILE


def _segment_paths(root):
    paths = []
    for name in sorted(os.listdir(root)):
        shard_dir = os.path.join(root, name)
        if not name.startswith("shard-") or not os.path.isdir(shard_dir):
            continue
        for segment in sorted(os.listdir(shard_dir)):
            if segment.endswith(".jsonl"):
                paths.append(os.path.join(shard_dir, segment))
    return paths


class TestBasics:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("some__key", {"ipc": 1.5, "workload": "x"})
        assert store.get("some__key") == {"ipc": 1.5, "workload": "x"}
        assert "some__key" in store
        assert store.get("other__key") is None

    def test_persists_across_instances(self, tmp_path):
        first = ResultStore(str(tmp_path))
        first.put("k1", {"v": 1})
        first.put("k2", {"v": 2})
        first.close()
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("k1") == {"v": 1}
        assert fresh.get("k2") == {"v": 2}
        assert sorted(fresh.keys()) == ["k1", "k2"]

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("k") == {"v": 2}
        stats = fresh.stats()
        assert stats.entries == 2
        assert stats.live_keys == 1
        assert stats.superseded == 1

    def test_format_marker_written_and_checked(self, tmp_path):
        ResultStore(str(tmp_path))
        marker = tmp_path / FORMAT_FILE
        assert marker.exists()
        marker.write_text(json.dumps(
            {"format": "ltrf-store", "version": 999, "shards": 16}
        ))
        with pytest.raises(StoreError, match="v999"):
            ResultStore(str(tmp_path))

    def test_open_without_create_requires_marker(self, tmp_path):
        with pytest.raises(StoreError, match="not a result store"):
            ResultStore(str(tmp_path), create=False)
        assert not (tmp_path / FORMAT_FILE).exists()   # untouched
        ResultStore(str(tmp_path)).put("k", {"v": 1})
        reader = ResultStore(str(tmp_path), create=False)
        assert reader.get("k") == {"v": 1}

    def test_shard_count_read_from_marker(self, tmp_path):
        ResultStore(str(tmp_path), shards=4).put("k", {"v": 1})
        # A reader opened with the default shard count must still
        # address keys the way the creator did.
        fresh = ResultStore(str(tmp_path))
        assert fresh.shards == 4
        assert fresh.get("k") == {"v": 1}

    def test_foreign_files_ignored(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", {"v": 1})
        (tmp_path / "README.txt").write_text("not a segment")
        shard_dir = os.path.dirname(_segment_paths(str(tmp_path))[0])
        with open(os.path.join(shard_dir, "notes.txt"), "w") as handle:
            handle.write("also not a segment")
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("k") == {"v": 1}
        assert fresh.verify().ok


class TestInjectiveNaming:
    """The regression the store exists for: no key aliasing, ever."""

    def test_legacy_aliasing_keys_resolve_to_distinct_records(self,
                                                              tmp_path):
        # A file-backed workload path `a/b` and a workload *named*
        # `a_b` aliased to one file under the legacy sanitiser...
        slashed = "a/b__BL__cfg0__0__kdeadbeef"
        underscored = "a_b__BL__cfg0__0__kdeadbeef"
        assert legacy_entry_name(slashed) == legacy_entry_name(underscored)
        # ...but the store addresses records by the full key string.
        store = ResultStore(str(tmp_path))
        store.put(slashed, {"workload": "a/b", "ipc": 1.0})
        store.put(underscored, {"workload": "a_b", "ipc": 2.0})
        assert store.get(slashed) == {"workload": "a/b", "ipc": 1.0}
        assert store.get(underscored) == {"workload": "a_b", "ipc": 2.0}
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert fresh.get(slashed) == {"workload": "a/b", "ipc": 1.0}
        assert fresh.get(underscored) == {"workload": "a_b", "ipc": 2.0}

    def test_plus_policy_keys_distinct(self, tmp_path):
        plus = "wl__LTRF+__cfg0__0__kdeadbeef"
        spelled = "wl__LTRFplus__cfg0__0__kdeadbeef"
        assert legacy_entry_name(plus) == legacy_entry_name(spelled)
        store = ResultStore(str(tmp_path))
        store.put(plus, {"policy": "LTRF+"})
        store.put(spelled, {"policy": "LTRFplus"})
        assert store.get(plus) == {"policy": "LTRF+"}
        assert store.get(spelled) == {"policy": "LTRFplus"}

    def test_hostile_key_characters_round_trip(self, tmp_path):
        # Keys are data, not filenames: newlines, separators and very
        # long paths must all round-trip.
        keys = [
            "with\nnewline__BL__c__0__k1",
            "with\ttab__BL__c__0__k1",
            ("x" * 500) + "__BL__c__0__k1",
            'quote"and\\backslash__BL__c__0__k1',
        ]
        store = ResultStore(str(tmp_path))
        for index, key in enumerate(keys):
            store.put(key, {"i": index})
        store.close()
        fresh = ResultStore(str(tmp_path))
        for index, key in enumerate(keys):
            assert fresh.get(key) == {"i": index}


class TestSegments:
    def test_rotation_bounds_segment_size(self, tmp_path):
        store = ResultStore(str(tmp_path), shards=1, segment_bytes=200)
        for index in range(20):
            store.put(f"key-{index}", {"v": index})
        segments = _segment_paths(str(tmp_path))
        assert len(segments) > 1
        fresh = ResultStore(str(tmp_path))
        for index in range(20):
            assert fresh.get(f"key-{index}") == {"v": index}

    def test_two_stores_write_disjoint_segments(self, tmp_path):
        a = ResultStore(str(tmp_path), shards=1)
        b = ResultStore(str(tmp_path), shards=1)
        a.put("ka", {"v": "a"})
        b.put("kb", {"v": "b"})
        assert len(_segment_paths(str(tmp_path))) == 2
        # Each store observes the other's published records.
        assert a.get("kb") == {"v": "b"}
        assert b.get("ka") == {"v": "a"}

    def test_compaction_merges_and_drops_dead_entries(self, tmp_path):
        store = ResultStore(str(tmp_path), shards=1, segment_bytes=150)
        for index in range(10):
            store.put(f"key-{index}", {"v": index})
        store.put("key-0", {"v": "rewritten"})
        report = store.compact()
        assert report.shards_compacted == 1
        assert report.segments_after == 1
        assert report.entries_dropped == 1
        assert len(_segment_paths(str(tmp_path))) == 1
        # Both the compacting instance and a fresh one serve the data.
        assert store.get("key-0") == {"v": "rewritten"}
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("key-0") == {"v": "rewritten"}
        for index in range(1, 10):
            assert fresh.get(f"key-{index}") == {"v": index}
        assert fresh.stats().superseded == 0

    def test_compaction_is_idempotent_and_store_usable_after(self,
                                                             tmp_path):
        store = ResultStore(str(tmp_path), shards=2)
        store.put("k1", {"v": 1})
        store.compact()
        second = store.compact()
        assert second.shards_compacted == 0
        store.put("k2", {"v": 2})      # writing after compact rotates
        assert store.get("k1") == {"v": 1}
        assert store.get("k2") == {"v": 2}

    def test_compaction_of_empty_store(self, tmp_path):
        report = ResultStore(str(tmp_path)).compact()
        assert report.shards_compacted == 0
        assert report.segments_before == 0


class TestCrashConsistency:
    def test_truncated_final_segment_tolerated(self, tmp_path):
        store = ResultStore(str(tmp_path), shards=1)
        store.put("k1", {"v": 1})
        store.put("k2", {"v": 2})
        store.close()
        (segment,) = _segment_paths(str(tmp_path))
        with open(segment, "ab") as handle:           # crash mid-append
            handle.write(b'{"k": "k3", "r": {"v"')
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("k1") == {"v": 1}
        assert fresh.get("k2") == {"v": 2}
        assert fresh.get("k3") is None
        stats = fresh.stats()
        assert stats.torn_tails == 1
        assert stats.corrupt_lines == 0
        assert fresh.verify().ok    # torn tails are tolerated by design

    def test_compaction_reclaims_torn_tail(self, tmp_path):
        store = ResultStore(str(tmp_path), shards=1)
        store.put("k1", {"v": 1})
        store.close()
        (segment,) = _segment_paths(str(tmp_path))
        with open(segment, "ab") as handle:
            handle.write(b"{torn")
        fresh = ResultStore(str(tmp_path))
        fresh.compact()
        stats = fresh.stats()
        assert stats.torn_tails == 0
        assert fresh.get("k1") == {"v": 1}

    def test_corrupt_interior_line_skipped_and_flagged(self, tmp_path):
        store = ResultStore(str(tmp_path), shards=1)
        store.put("k1", {"v": 1})
        store.close()
        (segment,) = _segment_paths(str(tmp_path))
        with open(segment, "ab") as handle:
            handle.write(b"garbage that is not json\n")
            handle.write(b'{"k": "k2", "r": {"v": 2}}\n')
        fresh = ResultStore(str(tmp_path))
        assert fresh.get("k1") == {"v": 1}
        assert fresh.get("k2") == {"v": 2}   # entries after the damage load
        report = fresh.verify()
        assert not report.ok
        assert report.stats.corrupt_lines == 1
        # Compaction drops the damage; verify is clean afterwards.
        fresh.compact()
        assert fresh.verify().ok
        assert fresh.get("k2") == {"v": 2}

    def test_concurrent_writer_partial_line_then_completed(self, tmp_path):
        """A reader polling during another writer's append sees nothing
        until the line is complete, then sees the full record."""
        reader = ResultStore(str(tmp_path), shards=1)
        writer = ResultStore(str(tmp_path), shards=1)
        writer.put("k1", {"v": 1})
        assert reader.get("k1") == {"v": 1}
        # Hand-roll a partial append on the writer's own segment, as
        # the OS would expose a flush that raced with the read.
        line = json.dumps({"k": "k2", "r": {"v": 2}}) + "\n"
        segment = writer._states[writer.shard_of("k2")].writer_path
        with open(segment, "ab") as handle:
            handle.write(line[:9].encode())
            handle.flush()
            assert reader.get("k2") is None          # partial: invisible
            handle.write(line[9:].encode())
        assert reader.get("k2") == {"v": 2}          # completed: visible
        assert reader.get("k1") == {"v": 1}

    def test_dead_writer_torn_segment_then_rerun_wins_by_rank(
            self, tmp_path):
        """A concurrent writer dies mid-append (a killed sweep worker):
        its torn final line stays invisible to a live reader's delta
        rescan, a later writer's re-run of the lost point wins by
        (seq, writer) rank, and verify stays green throughout."""
        reader = ResultStore(str(tmp_path), shards=1)
        dying = ResultStore(str(tmp_path), shards=1)
        dying.put("done", {"v": 1})
        segment = dying._states[dying.shard_of("lost")].writer_path
        with open(segment, "ab") as handle:   # killed mid-append
            handle.write(b'{"k": "lost", "r": {"v')
        # (never closed -- the writer process is gone)
        assert reader.get("done") == {"v": 1}
        assert reader.get("lost") is None        # torn: invisible

        rerun = ResultStore(str(tmp_path), shards=1)  # higher seq
        rerun.put("lost", {"v": 2})
        rerun.put("done", {"v": 1})              # idempotent re-put
        # The live reader's delta rescan picks up the re-run...
        assert reader.get("lost") == {"v": 2}
        assert reader.get("done") == {"v": 1}
        # ...and a fresh full replay agrees: the re-run's segment
        # outranks the dead writer's.
        fresh = ResultStore(str(tmp_path), shards=1)
        assert fresh.get("lost") == {"v": 2}
        report = fresh.verify()
        assert report.ok
        assert report.stats.torn_tails == 1

    def test_live_index_matches_full_replay_winner(self, tmp_path):
        """Two writers' active segments grow concurrently; a live
        reader applying deltas out of rank order must still converge
        on the same winner a fresh full replay picks (the higher
        (seq, writer) segment), not on whichever delta arrived last."""
        a = ResultStore(str(tmp_path), shards=1)
        b = ResultStore(str(tmp_path), shards=1)
        a.put("warmup", {"v": 0})             # A owns seg-1
        b.put("k", {"v": "from-b"})           # B owns seg-2
        reader = ResultStore(str(tmp_path), shards=1)
        assert reader.get("k") == {"v": "from-b"}
        a.put("k", {"v": "from-a"})           # later wall-clock, lower seq
        reader.get("missing")                 # force a delta refresh
        live_view = reader.get("k")
        replay_view = ResultStore(str(tmp_path), shards=1).get("k")
        assert live_view == replay_view == {"v": "from-b"}

    def test_verify_flags_conflicting_payloads_for_one_key(self, tmp_path):
        """Two *distinct* payloads under one key (aliasing/corruption,
        or a record-schema change) must fail verification."""
        store = ResultStore(str(tmp_path))
        store.put("k", {"v": 1})
        store.put("k", {"v": 999})
        report = store.verify()
        assert not report.ok
        assert report.conflicts == {"k": 2}
        # Identical re-puts (the normal racing-writers case) are fine.
        clean = ResultStore(str(tmp_path / "clean"))
        clean.put("k", {"v": 1})
        clean.put("k", {"v": 1})
        assert clean.verify().ok
