"""Experiment harness: one entry point per paper table and figure."""

from repro.experiments.capacity import fig3, fig4, fig9, fig10
from repro.experiments.compiler_metrics import overheads, storage_report, table4
from repro.experiments.latency_tolerance import (
    LATENCY_GRID,
    SWEEP_SUBSET,
    fig11,
    fig12,
    fig13,
    fig14,
    max_tolerable_latency,
    normalized_sweep,
    render_sweep_table,
    sweep_requests,
)
from repro.experiments.report import ExperimentResult, geomean, mean, render_table
from repro.experiments.runner import (
    Runner,
    RunRecord,
    SimRequest,
    baseline_config,
    default_cache_dir,
    sweep_config,
    table2_config,
)
from repro.experiments.static_tables import fig2, table1, table2

__all__ = [
    "ExperimentResult",
    "LATENCY_GRID",
    "RunRecord",
    "Runner",
    "SWEEP_SUBSET",
    "SimRequest",
    "baseline_config",
    "default_cache_dir",
    "fig2",
    "fig3",
    "fig4",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "geomean",
    "max_tolerable_latency",
    "mean",
    "normalized_sweep",
    "overheads",
    "render_sweep_table",
    "render_table",
    "storage_report",
    "sweep_config",
    "sweep_requests",
    "table1",
    "table2",
    "table2_config",
    "table4",
]
