"""Migration smoke check: legacy cache -> `store migrate` -> same table.

Run with:  PYTHONPATH=src python scripts/migration_smoke.py [--workloads N]

End-to-end rehearsal of the legacy-cache upgrade path, used by CI and
runnable locally before a release:

1. simulate a figure-3 grid into a fresh result store and render the
   table (the reference rendering);
2. export every store record into a *legacy-format* flat-file cache
   (the exact pre-store filenames, lossy sanitisation included);
3. run the real migrator (`repro.cli store migrate`) into a second,
   empty store;
4. re-render figure 3 from the migrated store and require (a) zero
   re-simulations -- every record must come from the migrated store --
   and (b) a byte-identical table;
5. `store verify` the migrated store.

Exits non-zero, with a diff, on any mismatch.
"""

import argparse
import difflib
import sys
import tempfile

from repro.cli import main as cli_main
from repro.experiments import Runner
from repro.experiments.capacity import fig3
from repro.store import write_legacy_entry
from repro.workloads import EVALUATION


def run(workload_count: int) -> int:
    workloads = list(EVALUATION)[:workload_count]
    source_dir = tempfile.mkdtemp(prefix="smoke-source-")
    legacy_dir = tempfile.mkdtemp(prefix="smoke-legacy-")
    migrated_dir = tempfile.mkdtemp(prefix="smoke-migrated-")

    print(f"[1/5] simulating fig3 over {workloads} -> {source_dir}")
    source = Runner(cache_dir=source_dir)
    reference = fig3(source, workloads).render()

    print(f"[2/5] exporting store records to legacy format -> {legacy_dir}")
    exported = 0
    for record in source.results().records():
        write_legacy_entry(legacy_dir, record.key, dict(record.payload))
        exported += 1
    print(f"      {exported} legacy entr(ies) written")
    if exported == 0:
        print("FAIL: nothing exported; the source run cached nothing")
        return 1

    print(f"[3/5] store migrate {legacy_dir} -> {migrated_dir}")
    code = cli_main(
        ["store", "migrate", "--dir", migrated_dir, legacy_dir]
    )
    if code != 0:
        print(f"FAIL: store migrate exited {code}")
        return 1

    print("[4/5] re-rendering fig3 from the migrated store")
    migrated_runner = Runner(cache_dir=migrated_dir)
    rendered = fig3(migrated_runner, workloads).render()
    if migrated_runner.stats.simulated != 0:
        print(f"FAIL: migrated store missed "
              f"{migrated_runner.stats.simulated} record(s); migration "
              "lost or mis-keyed entries")
        return 1
    if rendered != reference:
        print("FAIL: rendered table differs after migration:")
        sys.stdout.writelines(difflib.unified_diff(
            reference.splitlines(keepends=True),
            rendered.splitlines(keepends=True),
            fromfile="legacy-cache rendering",
            tofile="migrated-store rendering",
        ))
        return 1
    print("      byte-identical, zero re-simulations")

    print("[5/5] store verify on the migrated store")
    code = cli_main(["store", "verify", "--dir", migrated_dir])
    if code != 0:
        print(f"FAIL: store verify exited {code}")
        return 1
    print("OK: migration preserves figure tables byte-for-byte")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workloads", type=int, default=3, metavar="N",
        help="evaluation workloads to include in the fig3 grid "
             "(default 3; higher is slower but broader)",
    )
    args = parser.parse_args(argv)
    return run(args.workloads)


if __name__ == "__main__":
    sys.exit(main())
